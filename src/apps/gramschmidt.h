// P-GRAMSCHM (Polybench): modified Gram-Schmidt QR over K columns.
// Column k of Q is re-read by every later column's update kernel, so
// per-block access counts grow in small steps from the last column to
// the first — the Fig. 3(h) staircase, with no disproportionally hot
// blocks. The paper's second counterexample.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class GramSchmidtApp final : public App {
 public:
  explicit GramSchmidtApp(std::uint32_t n = 128, std::uint32_t k = 32)
      : n_(n), k_(k) {}

  std::string Name() const override { return "P-GRAMSCHM"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override {
    return {"Q", "R"};
  }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override { return 0.01; }
  std::string MetricName() const override {
    return "fraction of differing Q/R elements";
  }
  std::uint32_t AluCyclesPerMem() const override { return 6; }

 private:
  std::uint32_t n_, k_;
  exec::ArrayRef<float> a_, q_, r_;
};

}  // namespace dcrm::apps
