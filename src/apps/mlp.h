// L-MLP2: a two-layer perceptron (fc1 + ReLU, then fc2) declared as a
// kernel graph with two independent batch-half chains:
//
//   X ─┬─> fc1 (rows 0..N/2,  W1) ─> h0 ─> fc2 (W2) ─┬─> Y
//      └─> fc1 (rows N/2..N, W1) ─> h1 ─> fc2 (W2) ─┘
//
// The weight matrices W1/W2 are each read by both chunk launches, and
// Y has two partial writers — the every-prior-writer edge semantics
// and the "repeated launch name" stats keying both get exercised by a
// topology that is *not* a single chain.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class Mlp2App final : public App {
 public:
  explicit Mlp2App(std::uint32_t batch = 32, std::uint32_t in_dim = 32,
                   std::uint32_t hidden = 32, std::uint32_t out_dim = 16)
      : batch_(batch), in_(in_dim), hidden_(hidden), out_(out_dim) {}

  std::string Name() const override { return "L-MLP2"; }
  void Setup(mem::DeviceMemory& dev) override;
  exec::KernelGraph Graph() override;
  std::vector<KernelLaunch> Kernels() override {
    return GraphKernels(Graph());
  }
  std::vector<std::string> OutputObjects() const override { return {"Y"}; }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // A corrupted weight block poisons a full output column across the
    // batch; faults in streamed activations touch only a few elements.
    return 0.05;
  }
  std::string MetricName() const override {
    return "fraction of differing output elements";
  }

 private:
  std::uint32_t batch_;
  std::uint32_t in_;
  std::uint32_t hidden_;
  std::uint32_t out_;
  exec::ArrayRef<float> x_, w1_, w2_, h0_, h1_, y_;
};

}  // namespace dcrm::apps
