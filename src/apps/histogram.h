// C-Histogram (CUDA SDK histogram64-style): each thread accumulates a
// strided slice of the input into its private partial histogram; a
// second kernel reduces the partials into the final bins.
//
// A deliberately awkward case for the paper's schemes: the partial
// histograms are by far the hottest data (read-modify-written per
// input element), but they are *writable*, so the read-only schemes
// can cover nothing — the app has a knee-shaped profile with an empty
// coverage set, protectable only by the store-propagation extension.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class HistogramApp final : public App {
 public:
  static constexpr std::uint32_t kCtaSize = 64;

  explicit HistogramApp(std::uint32_t n = 65536, std::uint32_t threads = 256,
                        std::uint32_t bins = 64)
      : n_(n), threads_(threads), bins_(bins) {}

  std::string Name() const override { return "C-Histogram"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override { return {"Bins"}; }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    return 0.02;  // >2% of bins off by any amount
  }
  std::string MetricName() const override {
    return "fraction of differing bins";
  }
  std::uint32_t AluCyclesPerMem() const override { return 4; }

 private:
  std::uint32_t n_, threads_, bins_;
  exec::ArrayRef<float> data_;
  exec::ArrayRef<std::uint32_t> partial_, bins_arr_;
};

}  // namespace dcrm::apps
