#include "apps/image_filters.h"

#include <algorithm>
#include <cmath>

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc {
  kLdWidth = 1,
  kLdHeight = 2,
  kLdImage = 3,
  kLdFilter = 4,
  kStOut = 5,
};
constexpr std::uint32_t kTile = 16;

// Clamp that stays well-defined when a faulted width/height makes the
// upper bound non-positive (std::clamp would be UB with lo > hi).
std::int64_t ClampIdx(std::int64_t v, std::int64_t hi_exclusive) {
  const std::int64_t hi = hi_exclusive > 1 ? hi_exclusive - 1 : 0;
  return std::min(std::max<std::int64_t>(v, 0), hi);
}
}  // namespace

void ImageFilterApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint64_t pixels = std::uint64_t{width_} * height_;
  image_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Image", pixels * 4, true)).base);
  if (FilterSize() > 0) {
    filter_ = exec::ArrayRef<float>(
        sp.Object(sp.Allocate("Filter", FilterSize() * 4, true)).base);
    InitFilter(dev, filter_.base());
  } else {
    filter_ = exec::ArrayRef<float>(0);
  }
  width_addr_ = sp.Object(sp.Allocate("Filter_Width", 4, true)).base;
  height_addr_ = sp.Object(sp.Allocate("Filter_Height", 4, true)).base;
  out_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("OutImage", pixels * 4, false)).base);
  FillUniform(dev, image_.base(), pixels, 0.0f, 255.0f, 41);
  dev.Write<std::int32_t>(width_addr_, static_cast<std::int32_t>(width_));
  dev.Write<std::int32_t>(height_addr_, static_cast<std::int32_t>(height_));
  FillConst(dev, out_.base(), pixels, 0.0f);
}

std::vector<KernelLaunch> ImageFilterApp::Kernels() {
  const auto image = image_;
  const auto filter = filter_;
  const auto out = out_;
  const Addr wa = width_addr_;
  const Addr ha = height_addr_;
  const std::uint32_t width = width_;
  const std::uint32_t height = height_;

  KernelLaunch k;
  k.name = "filter_kernel";
  k.cfg.grid = {(width + kTile - 1) / kTile, (height + kTile - 1) / kTile, 1};
  k.cfg.block = {kTile, kTile, 1};
  k.body = [=, this](exec::ThreadCtx& ctx) {
    const std::uint32_t x =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    const std::uint32_t y =
        ctx.blockIdx().y * ctx.blockDim().y + ctx.threadIdx().y;
    if (x >= width || y >= height) return;
    // The loaded dimensions drive the index arithmetic, as in the
    // PTX of the real kernels (Listing 3 reads width/height twice:
    // once for the bounds test, once for indexing).
    const auto w = static_cast<std::int64_t>(ctx.Ld<std::int32_t>(kLdWidth, wa));
    const auto h =
        static_cast<std::int64_t>(ctx.Ld<std::int32_t>(kLdHeight, ha));
    const float v = Compute(ctx, image, filter, x, y, w, h);
    out.St(ctx, kStOut, std::uint64_t{y} * width + x,
           std::clamp(v, 0.0f, 255.0f));
  };
  return {std::move(k)};
}

double ImageFilterApp::OutputError(std::span<const float> golden,
                                   std::span<const float> observed) const {
  return metrics::NrmseRendered(golden, observed);
}

// ---------------------------------------------------------------- //

void LaplacianApp::InitFilter(mem::DeviceMemory& dev, Addr base) const {
  static constexpr float kLaplacian[9] = {-1, -1, -1, -1, 8, -1, -1, -1, -1};
  for (int i = 0; i < 9; ++i) {
    dev.Write<float>(base + static_cast<Addr>(i) * 4, kLaplacian[i]);
  }
}

float LaplacianApp::Compute(exec::ThreadCtx& ctx,
                            const exec::ArrayRef<float>& image,
                            const exec::ArrayRef<float>& filter,
                            std::int64_t x, std::int64_t y, std::int64_t w,
                            std::int64_t h) const {
  float acc = 0.0f;
  for (std::int64_t ky = -1; ky <= 1; ++ky) {
    for (std::int64_t kx = -1; kx <= 1; ++kx) {
      const std::int64_t sx = ClampIdx(x + kx, w);
      const std::int64_t sy = ClampIdx(y + ky, h);
      const float pixel =
          image.Ld(ctx, kLdImage, static_cast<std::uint64_t>(sy * w + sx));
      const float coeff = filter.Ld(
          ctx, kLdFilter, static_cast<std::uint64_t>((ky + 1) * 3 + (kx + 1)));
      acc += pixel * coeff;
    }
  }
  return acc;
}

float MeanfilterApp::Compute(exec::ThreadCtx& ctx,
                             const exec::ArrayRef<float>& image,
                             const exec::ArrayRef<float>&, std::int64_t x,
                             std::int64_t y, std::int64_t w,
                             std::int64_t h) const {
  float acc = 0.0f;
  for (std::int64_t ky = -1; ky <= 1; ++ky) {
    for (std::int64_t kx = -1; kx <= 1; ++kx) {
      const std::int64_t sx = ClampIdx(x + kx, w);
      const std::int64_t sy = ClampIdx(y + ky, h);
      acc += image.Ld(ctx, kLdImage, static_cast<std::uint64_t>(sy * w + sx));
    }
  }
  return acc / 9.0f;
}

void SobelApp::InitFilter(mem::DeviceMemory& dev, Addr base) const {
  static constexpr float kSobel[18] = {
      // Gx
      -1, 0, 1, -2, 0, 2, -1, 0, 1,
      // Gy
      -1, -2, -1, 0, 0, 0, 1, 2, 1};
  for (int i = 0; i < 18; ++i) {
    dev.Write<float>(base + static_cast<Addr>(i) * 4, kSobel[i]);
  }
}

float SobelApp::Compute(exec::ThreadCtx& ctx,
                        const exec::ArrayRef<float>& image,
                        const exec::ArrayRef<float>& filter, std::int64_t x,
                        std::int64_t y, std::int64_t w, std::int64_t h) const {
  float gx = 0.0f;
  float gy = 0.0f;
  for (std::int64_t ky = -1; ky <= 1; ++ky) {
    for (std::int64_t kx = -1; kx <= 1; ++kx) {
      const std::int64_t sx = ClampIdx(x + kx, w);
      const std::int64_t sy = ClampIdx(y + ky, h);
      const float pixel =
          image.Ld(ctx, kLdImage, static_cast<std::uint64_t>(sy * w + sx));
      const auto fi = static_cast<std::uint64_t>((ky + 1) * 3 + (kx + 1));
      gx += pixel * filter.Ld(ctx, kLdFilter, fi);
      gy += pixel * filter.Ld(ctx, kLdFilter, fi + 9);
    }
  }
  return std::sqrt(gx * gx + gy * gy);
}

}  // namespace dcrm::apps
