// L-Transformer: one transformer encoder block declared as a kernel
// graph — the PR's flagship multi-kernel DAG workload. Chunked QKV
// projection GEMMs (two row-halves per projection, six launches
// sharing the name "qkv_gemm") feed attention scores, softmax, the
// context GEMM, the output projection and a residual layernorm:
//
//   X ──┬─> qkv_gemm(Wq) x2 ─> Q ─┐
//       ├─> qkv_gemm(Wk) x2 ─> K ─┼─> attn_score ─> softmax ─┐
//       ├─> qkv_gemm(Wv) x2 ─> V ─┼──────────────────────────┴─> attn_ctx
//       └────────────────────────────> layernorm <─ out_proj <─┘
//
// The activations X are read by seven kernels and each D x D weight by
// two — cross-kernel reuse no single-launch profile can see, which is
// exactly what the graph-aware hotness view (kernels_reading /
// max_kernel_reads) and the weight-tensor protection experiment
// measure.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class TransformerApp final : public App {
 public:
  explicit TransformerApp(std::uint32_t seq = 32, std::uint32_t dim = 32)
      : seq_(seq), dim_(dim) {}

  std::string Name() const override { return "L-Transformer"; }
  void Setup(mem::DeviceMemory& dev) override;
  exec::KernelGraph Graph() override;
  std::vector<KernelLaunch> Kernels() override {
    return GraphKernels(Graph());
  }
  std::vector<std::string> OutputObjects() const override { return {"Y"}; }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // Softmax and layernorm spread any surviving corruption across the
    // whole row; 5% of differing output elements separates locally
    // masked noise from a poisoned activation or weight block.
    return 0.05;
  }
  std::string MetricName() const override {
    return "fraction of differing output elements";
  }

 private:
  std::uint32_t seq_;
  std::uint32_t dim_;
  exec::ArrayRef<float> x_, wq_, wk_, wv_, wo_, gamma_, beta_;
  exec::ArrayRef<float> q_, k_, v_, scores_, probs_, ctx_, attn_out_, y_;
};

}  // namespace dcrm::apps
