#include "apps/mvt.h"

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc {
  kLdX1 = 1,
  kLdA1 = 2,
  kLdY1 = 3,
  kStX1 = 4,
  kLdX2 = 5,
  kLdA2 = 6,
  kLdY2 = 7,
  kStX2 = 8,
};
constexpr std::uint32_t kCta = 256;
}  // namespace

void MvtApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint64_t n2 = std::uint64_t{n_} * n_;
  a_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("a", n2 * 4, true)).base);
  y1_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("y1", n_ * 4, true)).base);
  y2_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("y2", n_ * 4, true)).base);
  x1_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("x1", n_ * 4, false)).base);
  x2_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("x2", n_ * 4, false)).base);
  FillUniform(dev, a_.base(), n2, -1.0f, 1.0f, 31);
  FillUniform(dev, y1_.base(), n_, -1.0f, 1.0f, 32);
  FillUniform(dev, y2_.base(), n_, -1.0f, 1.0f, 33);
  FillUniform(dev, x1_.base(), n_, -1.0f, 1.0f, 34);
  FillUniform(dev, x2_.base(), n_, -1.0f, 1.0f, 35);
}

std::vector<KernelLaunch> MvtApp::Kernels() {
  const std::uint32_t n = n_;
  const auto a = a_;
  const auto y1 = y1_;
  const auto y2 = y2_;
  const auto x1 = x1_;
  const auto x2 = x2_;

  KernelLaunch k1;
  k1.name = "mvt_kernel1";
  k1.cfg.grid = {(n + kCta - 1) / kCta, 1, 1};
  k1.cfg.block = {kCta, 1, 1};
  k1.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t i =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (i >= n) return;
    float acc = x1.Ld(ctx, kLdX1, i);
    for (std::uint32_t j = 0; j < n; ++j) {
      acc += a.Ld(ctx, kLdA1, std::uint64_t{i} * n + j) * y1.Ld(ctx, kLdY1, j);
    }
    x1.St(ctx, kStX1, i, acc);
  };

  KernelLaunch k2;
  k2.name = "mvt_kernel2";
  k2.cfg.grid = {(n + kCta - 1) / kCta, 1, 1};
  k2.cfg.block = {kCta, 1, 1};
  k2.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t i =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (i >= n) return;
    float acc = x2.Ld(ctx, kLdX2, i);
    for (std::uint32_t j = 0; j < n; ++j) {
      acc += a.Ld(ctx, kLdA2, std::uint64_t{j} * n + i) * y2.Ld(ctx, kLdY2, j);
    }
    x2.St(ctx, kStX2, i, acc);
  };

  return {std::move(k1), std::move(k2)};
}

double MvtApp::OutputError(std::span<const float> golden,
                           std::span<const float> observed) const {
  return metrics::VectorDiffFractionRel(golden, observed, 1e-6, 1e-6);
}

}  // namespace dcrm::apps
