// P-GESUMMV (Polybench): y = alpha*A*x + beta*B*x.
// Hot data object: x — broadcast-read by every thread of every warp.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class GesummvApp final : public App {
 public:
  explicit GesummvApp(std::uint32_t n = 256) : n_(n) {}

  std::string Name() const override { return "P-GESUMMV"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override { return {"y"}; }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // 5% of output elements: a handful of locally-corrupted elements
    // (faults in streamed matrix blocks touch O(#faulty blocks)
    // outputs) stays below this at any scale, while a corrupted hot
    // vector element poisons every output element.
    return 0.05;
  }
  std::string MetricName() const override {
    return "fraction of differing output vector elements";
  }
  std::uint32_t AluCyclesPerMem() const override { return 6; }

 private:
  std::uint32_t n_;
  exec::ArrayRef<float> a_, b_, x_, y_;
};

}  // namespace dcrm::apps
