// AxBench-style image filters (Listing 3 of the paper):
// A-Laplacian, A-Meanfilter, A-Sobel. Each thread filters one pixel.
// Hot data objects: the filter coefficients and the Filter_Width /
// Filter_Height scalars — tiny, read by every thread of every warp.
// The image itself is large with low per-block reuse.
//
// The loaded width/height values are used for the actual index
// arithmetic (as in the real kernels), so faults in them produce
// wrong-pixel reads or out-of-range accesses (crashes), not just
// wrong arithmetic.
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class ImageFilterApp : public App {
 public:
  ImageFilterApp(std::uint32_t width, std::uint32_t height)
      : width_(width), height_(height) {}

  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override {
    return {"OutImage"};
  }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // AxBench-style 10% quality threshold: a faulty image block only
    // perturbs its 3x3 neighborhoods (NRMSE ~0.03 at small scales),
    // while a corrupted filter/dimension scalar wrecks every pixel.
    return 0.10;
  }
  std::string MetricName() const override {
    return "NRMSE vs. fault-free image";
  }
  std::uint32_t AluCyclesPerMem() const override { return 10; }

 protected:
  // Number of filter coefficient floats (0 = no Filter object).
  virtual std::uint32_t FilterSize() const = 0;
  virtual void InitFilter(mem::DeviceMemory& dev, Addr base) const = 0;
  // Per-pixel compute given the 3x3 neighborhood loader and filter
  // loader; returns the output pixel value.
  virtual float Compute(exec::ThreadCtx& ctx,
                        const exec::ArrayRef<float>& image,
                        const exec::ArrayRef<float>& filter, std::int64_t x,
                        std::int64_t y, std::int64_t w,
                        std::int64_t h) const = 0;

  std::uint32_t width_;
  std::uint32_t height_;
  exec::ArrayRef<float> image_, filter_, out_;
  Addr width_addr_ = 0;
  Addr height_addr_ = 0;
};

class LaplacianApp final : public ImageFilterApp {
 public:
  explicit LaplacianApp(std::uint32_t w = 128, std::uint32_t h = 128)
      : ImageFilterApp(w, h) {}
  std::string Name() const override { return "A-Laplacian"; }

 protected:
  std::uint32_t FilterSize() const override { return 9; }
  void InitFilter(mem::DeviceMemory& dev, Addr base) const override;
  float Compute(exec::ThreadCtx& ctx, const exec::ArrayRef<float>& image,
                const exec::ArrayRef<float>& filter, std::int64_t x,
                std::int64_t y, std::int64_t w, std::int64_t h) const override;
};

class MeanfilterApp final : public ImageFilterApp {
 public:
  explicit MeanfilterApp(std::uint32_t w = 128, std::uint32_t h = 128)
      : ImageFilterApp(w, h) {}
  std::string Name() const override { return "A-Meanfilter"; }

 protected:
  std::uint32_t FilterSize() const override { return 0; }
  void InitFilter(mem::DeviceMemory&, Addr) const override {}
  float Compute(exec::ThreadCtx& ctx, const exec::ArrayRef<float>& image,
                const exec::ArrayRef<float>& filter, std::int64_t x,
                std::int64_t y, std::int64_t w, std::int64_t h) const override;
};

class SobelApp final : public ImageFilterApp {
 public:
  explicit SobelApp(std::uint32_t w = 128, std::uint32_t h = 128)
      : ImageFilterApp(w, h) {}
  std::string Name() const override { return "A-Sobel"; }

 protected:
  std::uint32_t FilterSize() const override { return 18; }  // Gx ++ Gy
  void InitFilter(mem::DeviceMemory& dev, Addr base) const override;
  float Compute(exec::ThreadCtx& ctx, const exec::ArrayRef<float>& image,
                const exec::ArrayRef<float>& filter, std::int64_t x,
                std::int64_t y, std::int64_t w, std::int64_t h) const override;
};

}  // namespace dcrm::apps
