#include "apps/srad.h"

#include <algorithm>
#include <cmath>

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc {
  kLdIN = 1,
  kLdIS = 2,
  kLdIE = 3,
  kLdIW = 4,
  kLdJc = 5,
  kLdJn = 6,
  kLdJs = 7,
  kLdJe = 8,
  kLdJw = 9,
  kStC = 10,
  kLdC = 11,
  kLdCs = 12,
  kLdCe = 13,
  kLdJ2 = 14,
  kStJ = 15,
};
constexpr std::uint32_t kTile = 16;
constexpr float kQ0Sqr = 0.05f;   // homogeneity estimate
constexpr float kLambda = 0.5f;   // update step
}  // namespace

void SradApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint64_t pixels = std::uint64_t{rows_} * cols_;
  j_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Image", pixels * 4, true)).base);
  in_ = exec::ArrayRef<std::int32_t>(
      sp.Object(sp.Allocate("i_N", rows_ * 4, true)).base);
  is_ = exec::ArrayRef<std::int32_t>(
      sp.Object(sp.Allocate("i_S", rows_ * 4, true)).base);
  ie_ = exec::ArrayRef<std::int32_t>(
      sp.Object(sp.Allocate("i_E", cols_ * 4, true)).base);
  iw_ = exec::ArrayRef<std::int32_t>(
      sp.Object(sp.Allocate("i_W", cols_ * 4, true)).base);
  c_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("C_coef", pixels * 4, false)).base);
  jout_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("J_out", pixels * 4, false)).base);

  FillUniform(dev, j_.base(), pixels, 0.05f, 1.0f, 61);
  for (std::uint32_t i = 0; i < rows_; ++i) {
    dev.Write<std::int32_t>(in_.AddrOf(i),
                            static_cast<std::int32_t>(i == 0 ? 0 : i - 1));
    dev.Write<std::int32_t>(
        is_.AddrOf(i),
        static_cast<std::int32_t>(i + 1 >= rows_ ? rows_ - 1 : i + 1));
  }
  for (std::uint32_t j = 0; j < cols_; ++j) {
    dev.Write<std::int32_t>(
        ie_.AddrOf(j),
        static_cast<std::int32_t>(j + 1 >= cols_ ? cols_ - 1 : j + 1));
    dev.Write<std::int32_t>(iw_.AddrOf(j),
                            static_cast<std::int32_t>(j == 0 ? 0 : j - 1));
  }
  FillConst(dev, c_.base(), pixels, 0.0f);
  FillConst(dev, jout_.base(), pixels, 0.0f);
}

std::vector<KernelLaunch> SradApp::Kernels() {
  const auto j = j_;
  const auto c = c_;
  const auto jout = jout_;
  const auto in = in_;
  const auto is = is_;
  const auto ie = ie_;
  const auto iw = iw_;
  const std::uint32_t rows = rows_;
  const std::uint32_t cols = cols_;

  // srad_kernel1: diffusion coefficient from local gradients.
  KernelLaunch k1;
  k1.name = "srad_kernel1";
  k1.cfg.grid = {(cols + kTile - 1) / kTile, (rows + kTile - 1) / kTile, 1};
  k1.cfg.block = {kTile, kTile, 1};
  k1.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t col =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    const std::uint32_t row =
        ctx.blockIdx().y * ctx.blockDim().y + ctx.threadIdx().y;
    if (row >= rows || col >= cols) return;
    const auto rn = static_cast<std::int64_t>(in.Ld(ctx, kLdIN, row));
    const auto rs = static_cast<std::int64_t>(is.Ld(ctx, kLdIS, row));
    const auto ce = static_cast<std::int64_t>(ie.Ld(ctx, kLdIE, col));
    const auto cw = static_cast<std::int64_t>(iw.Ld(ctx, kLdIW, col));
    const std::uint64_t idx = std::uint64_t{row} * cols + col;
    const float jc = j.Ld(ctx, kLdJc, idx);
    const float jn =
        j.Ld(ctx, kLdJn, static_cast<std::uint64_t>(rn * cols + col));
    const float js =
        j.Ld(ctx, kLdJs, static_cast<std::uint64_t>(rs * cols + col));
    const float je =
        j.Ld(ctx, kLdJe, static_cast<std::uint64_t>(row * cols + ce));
    const float jw =
        j.Ld(ctx, kLdJw, static_cast<std::uint64_t>(row * cols + cw));
    const float dn = jn - jc;
    const float ds = js - jc;
    const float de = je - jc;
    const float dw = jw - jc;
    const float g2 =
        (dn * dn + ds * ds + de * de + dw * dw) / (jc * jc + 1e-12f);
    const float l = (dn + ds + de + dw) / (jc + 1e-12f);
    const float num = (0.5f * g2) - ((1.0f / 16.0f) * (l * l));
    const float den = 1.0f + 0.25f * l;
    float qsqr = num / (den * den + 1e-12f);
    float coef = 1.0f / (1.0f + (qsqr - kQ0Sqr) / (kQ0Sqr * (1 + kQ0Sqr)));
    coef = std::clamp(coef, 0.0f, 1.0f);
    c.St(ctx, kStC, idx, coef);
  };

  // srad_kernel2: divergence update using south/east neighbor coefs.
  KernelLaunch k2;
  k2.name = "srad_kernel2";
  k2.cfg.grid = {(cols + kTile - 1) / kTile, (rows + kTile - 1) / kTile, 1};
  k2.cfg.block = {kTile, kTile, 1};
  k2.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t col =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    const std::uint32_t row =
        ctx.blockIdx().y * ctx.blockDim().y + ctx.threadIdx().y;
    if (row >= rows || col >= cols) return;
    const auto rn = static_cast<std::int64_t>(in.Ld(ctx, kLdIN, row));
    const auto rs = static_cast<std::int64_t>(is.Ld(ctx, kLdIS, row));
    const auto ce = static_cast<std::int64_t>(ie.Ld(ctx, kLdIE, col));
    const auto cw = static_cast<std::int64_t>(iw.Ld(ctx, kLdIW, col));
    const std::uint64_t idx = std::uint64_t{row} * cols + col;
    const float cc = c.Ld(ctx, kLdC, idx);
    const float cs =
        c.Ld(ctx, kLdCs, static_cast<std::uint64_t>(rs * cols + col));
    const float cei =
        c.Ld(ctx, kLdCe, static_cast<std::uint64_t>(row * cols + ce));
    const float jc = j.Ld(ctx, kLdJ2, idx);
    const float jn =
        j.Ld(ctx, kLdJn, static_cast<std::uint64_t>(rn * cols + col));
    const float js =
        j.Ld(ctx, kLdJs, static_cast<std::uint64_t>(rs * cols + col));
    const float je =
        j.Ld(ctx, kLdJe, static_cast<std::uint64_t>(row * cols + ce));
    const float jw =
        j.Ld(ctx, kLdJw, static_cast<std::uint64_t>(row * cols + cw));
    const float div = cs * (js - jc) + cc * (jn - jc) + cei * (je - jc) +
                      cc * (jw - jc);
    jout.St(ctx, kStJ, idx, jc + 0.25f * kLambda * div);
  };

  return {std::move(k1), std::move(k2)};
}

double SradApp::OutputError(std::span<const float> golden,
                            std::span<const float> observed) const {
  return metrics::NrmseRendered(golden, observed);
}

}  // namespace dcrm::apps
