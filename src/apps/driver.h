// High-level driver: runs an application once fault-free while
// collecting everything the reliability framework needs — access
// profile, warp traces, L1-miss profile, hot classification, golden
// outputs. This is the paper's "one-time offline profiling" step.
#pragma once

#include <memory>
#include <vector>

#include "apps/app.h"
#include "core/access_profile.h"
#include "core/hot_classifier.h"
#include "core/replication.h"
#include "sim/config.h"
#include "sim/gpu.h"
#include "sim/stats.h"
#include "trace/trace_store.h"

namespace dcrm::apps {

struct ProfileResult {
  std::unique_ptr<mem::DeviceMemory> dev;  // populated, fault-free state
  core::AccessProfiler profiler;
  // Immutable columnar trace artifact, shared by every downstream layer
  // (timing replay, analyzer, campaign workers) without copying.
  std::shared_ptr<const trace::TraceStore> trace_store;
  core::HotClassification hot;
  // Baseline timing-simulation stats (also the Fig. 8 miss profile).
  sim::GpuStats timing_baseline;
  std::vector<float> golden;  // fault-free outputs
};

// Runs `app` fault-free with profiling, trace collection, the
// functional L1-miss replay, and hot classification. When `preloaded`
// is non-null (a store read back via trace::LoadTrace), the functional
// re-execution still runs — the profiler and golden outputs need it —
// but the trace-building pass is skipped and the loaded store is used
// for the miss replay, transaction counts, and everything downstream.
ProfileResult ProfileApp(App& app, const sim::GpuConfig& cfg,
                         const core::HotConfig& hot_cfg = {},
                         std::shared_ptr<const trace::TraceStore> preloaded =
                             nullptr);

// Builds a hardware protection plan for the first `cover_objects`
// entries of the app's Table III coverage order, with replicas
// actually allocated in a fresh device (so replica addresses are
// realistic for the timing model's channel mapping).
struct ProtectionSetup {
  std::unique_ptr<mem::DeviceMemory> dev;
  sim::ProtectionPlan plan;
};
ProtectionSetup MakeProtectionSetup(
    App& app, const ProfileResult& profile, sim::Scheme scheme,
    unsigned cover_objects, bool lazy_compare = true,
    core::ReplicaPlacement placement = core::ReplicaPlacement::kDefault);

// Extension: protect an explicit set of objects by name, including
// writable ones — store propagation is enabled automatically when any
// named object is read-write (the paper's schemes cover read-only
// inputs only; see ProtectionPlan::propagate_stores).
ProtectionSetup MakeProtectionSetupForObjects(
    App& app, const ProfileResult& profile, sim::Scheme scheme,
    std::span<const std::string> object_names, bool lazy_compare = true);

// Replays the profiled traces through the cycle-level simulator under
// `plan`, with the app's arithmetic intensity.
sim::GpuStats RunTiming(const App& app, const ProfileResult& profile,
                        sim::GpuConfig cfg, const sim::ProtectionPlan& plan);

// RunTiming plus the per-SM / per-partition statistics breakdown —
// what the engine differential harness (and `dcrm timing --csv`)
// compares bit-for-bit between the cycle-stepped and event-driven
// engines.
struct TimingDetail {
  sim::GpuStats total;
  std::vector<sim::GpuStats> per_sm;
  std::vector<sim::GpuStats> per_partition;
};
TimingDetail RunTimingDetailed(const App& app, const ProfileResult& profile,
                               sim::GpuConfig cfg,
                               const sim::ProtectionPlan& plan);

}  // namespace dcrm::apps
