#include "apps/driver.h"

#include <algorithm>
#include <tuple>

#include "exec/kernel_graph.h"
#include "exec/launcher.h"
#include "trace/trace_builder.h"

namespace dcrm::apps {

namespace {
// Fans one access stream out to both the profiler and the trace
// builder.
class TeeSink final : public exec::AccessSink {
 public:
  TeeSink(exec::AccessSink& a, exec::AccessSink& b) : a_(&a), b_(&b) {}
  void OnAccess(const exec::ThreadCoord& who,
                const exec::AccessRecord& what) override {
    a_->OnAccess(who, what);
    b_->OnAccess(who, what);
  }

 private:
  exec::AccessSink* a_;
  exec::AccessSink* b_;
};
}  // namespace

ProtectionSetup MakeProtectionSetup(App& app, const ProfileResult& profile,
                                    sim::Scheme scheme,
                                    unsigned cover_objects, bool lazy_compare,
                                    core::ReplicaPlacement placement) {
  ProtectionSetup out;
  out.dev = std::make_unique<mem::DeviceMemory>();
  app.Setup(*out.dev);
  if (scheme == sim::Scheme::kNone || cover_objects == 0) {
    out.plan.scheme = sim::Scheme::kNone;
    return out;
  }
  const auto& order = profile.hot.coverage_order;
  if (cover_objects > order.size()) {
    throw std::invalid_argument("cover_objects exceeds coverage order size");
  }
  std::vector<mem::ObjectId> ids;
  ids.reserve(cover_objects);
  for (unsigned i = 0; i < cover_objects; ++i) ids.push_back(order[i].id);
  const unsigned copies = scheme == sim::Scheme::kDetectCorrect ? 2u : 1u;
  const auto replicas = core::ReplicateObjects(*out.dev, ids, copies,
                                               placement);
  out.plan =
      core::MakeProtectionPlan(out.dev->space(), replicas, scheme,
                               lazy_compare);
  // Populate the LD/ST unit's PC tracking table with the load sites
  // that touch the covered objects (Section IV-C: "store the addresses
  // of load instructions to the corresponding data objects").
  out.plan.pcs = profile.profiler.PcsTouching(ids);
  return out;
}

ProtectionSetup MakeProtectionSetupForObjects(
    App& app, const ProfileResult& profile, sim::Scheme scheme,
    std::span<const std::string> object_names, bool lazy_compare) {
  (void)profile;  // kept for signature symmetry with MakeProtectionSetup
  ProtectionSetup out;
  out.dev = std::make_unique<mem::DeviceMemory>();
  app.Setup(*out.dev);
  if (scheme == sim::Scheme::kNone || object_names.empty()) {
    out.plan.scheme = sim::Scheme::kNone;
    return out;
  }
  std::vector<mem::ObjectId> ids;
  bool any_writable = false;
  for (const auto& name : object_names) {
    const auto id = out.dev->space().FindByName(name);
    if (!id) throw std::invalid_argument("unknown object: " + name);
    ids.push_back(*id);
    any_writable = any_writable || !out.dev->space().Object(*id).read_only;
  }
  const unsigned copies = scheme == sim::Scheme::kDetectCorrect ? 2u : 1u;
  const auto replicas = core::ReplicateObjects(
      *out.dev, ids, copies, core::ReplicaPlacement::kDefault, 6,
      /*allow_writable=*/true);
  out.plan = core::MakeProtectionPlan(out.dev->space(), replicas, scheme,
                                      lazy_compare,
                                      /*propagate_stores=*/any_writable);
  // Leave plan.pcs empty: with writable objects, store sites must be
  // tracked too, and the address-range check subsumes both.
  return out;
}

sim::GpuStats RunTiming(const App& app, const ProfileResult& profile,
                        sim::GpuConfig cfg, const sim::ProtectionPlan& plan) {
  cfg.alu_cycles_per_mem = app.AluCyclesPerMem();
  sim::Gpu gpu(cfg, plan);
  return gpu.Run(*profile.trace_store);
}

TimingDetail RunTimingDetailed(const App& app, const ProfileResult& profile,
                               sim::GpuConfig cfg,
                               const sim::ProtectionPlan& plan) {
  cfg.alu_cycles_per_mem = app.AluCyclesPerMem();
  sim::Gpu gpu(cfg, plan);
  TimingDetail out;
  out.total = gpu.Run(*profile.trace_store);
  out.per_sm = gpu.PerSmStats();
  out.per_partition = gpu.PerPartitionStats();
  return out;
}

ProfileResult ProfileApp(App& app, const sim::GpuConfig& cfg,
                         const core::HotConfig& hot_cfg,
                         std::shared_ptr<const trace::TraceStore> preloaded) {
  ProfileResult out;
  out.dev = std::make_unique<mem::DeviceMemory>();
  app.Setup(*out.dev);
  out.profiler.AttachSpace(&out.dev->space());
  exec::DirectDataPlane plane(*out.dev);
  // Walk the app's kernel graph in its deterministic topological order
  // (identical to the legacy list order for chain-shimmed apps), so
  // traces carry graph node ids and the store records data edges.
  exec::KernelGraph graph = app.Graph();
  const std::vector<std::uint32_t> order = graph.TopoOrder();
  std::vector<std::uint32_t> kernel_of(graph.NumNodes(), 0);
  std::vector<trace::KernelTrace> traces;
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const std::uint32_t id = order[idx];
    exec::GraphNode& node = graph.Node(id);
    kernel_of[id] = static_cast<std::uint32_t>(idx);
    trace::TraceBuilder builder;
    out.profiler.BeginKernel(node.cfg);
    // With a preloaded store the trace-building tee is skipped — the
    // functional pass still feeds the profiler and the device state.
    if (preloaded != nullptr) {
      exec::LaunchKernel(node.cfg, plane, &out.profiler, node.body);
      out.profiler.EndKernel();
      continue;
    }
    TeeSink tee(out.profiler, builder);
    exec::LaunchKernel(node.cfg, plane, &tee, node.body);
    out.profiler.EndKernel();
    traces.push_back(builder.Build(node.cfg));
    traces.back().name = node.name;
    traces.back().node = id;
  }
  std::vector<trace::TraceStore::TraceEdge> edges;
  for (const exec::GraphEdge& e : graph.DataEdges()) {
    edges.push_back(trace::TraceStore::TraceEdge{
        kernel_of[e.producer], kernel_of[e.consumer], e.object});
  }
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    return std::tie(a.producer, a.consumer, a.object) <
           std::tie(b.producer, b.consumer, b.object);
  });
  out.trace_store = preloaded != nullptr
                        ? std::move(preloaded)
                        : trace::BuildStore(std::move(traces),
                                            std::move(edges));
  // Miss profile from a baseline run of the cycle-level simulator:
  // with warps desynchronized by real memory latencies, hot blocks
  // miss roughly in proportion to their (huge) access counts whenever
  // streaming data thrashes the L1 — the distribution the paper's
  // Fig. 8 selection weights by. (The idealized round-robin replay in
  // core::ReplayL1Misses keeps warps in phase and underestimates hot
  // misses; it remains available for fast approximate profiles.)
  sim::GpuConfig miss_cfg = cfg;
  miss_cfg.collect_block_misses = true;
  miss_cfg.alu_cycles_per_mem = app.AluCyclesPerMem();
  sim::Gpu miss_gpu(miss_cfg, sim::ProtectionPlan{});
  out.timing_baseline = miss_gpu.Run(*out.trace_store);
  {
    std::unordered_map<std::uint64_t, std::uint64_t> misses;
    for (const auto& [b, n] : out.timing_baseline.block_misses) {
      misses[b] += n;
    }
    out.profiler.AttachMissProfile(misses);
  }
  out.profiler.AttachTxnProfile(core::CountLoadTransactions(*out.trace_store));
  out.hot = core::ClassifyHot(out.profiler, out.dev->space(), hot_cfg);
  out.golden = ReadOutputs(app, *out.dev);
  return out;
}

}  // namespace dcrm::apps
