// C-NN (CUDA SDK-style convolutional network, Simard topology):
// 29x29 input -> conv 5x5/stride2 -> 6@13x13 -> conv 5x5/stride2 ->
// M@5x5 -> FC(F) -> FC(10 classes). Listing 2 of the paper is the
// first layer.
//
// Hot data objects: Layer1_Weights and Layer2_Weights — every thread
// of a CTA broadcasts the same weight element, and the same weights
// are reused across all images. The FC weight rows are read by a
// single thread each (low sharing), and the Images object is large
// with moderate per-block reuse, matching Table III's ordering.
//
// Weights are deterministic pseudorandom: the paper's metric (and
// ours) is the fraction of argmax classifications that *change*
// relative to the fault-free run of the same network, so trained
// weights are unnecessary (see DESIGN.md).
#pragma once

#include "apps/app.h"
#include "exec/kernel.h"

namespace dcrm::apps {

class NnApp final : public App {
 public:
  explicit NnApp(std::uint32_t num_images = 8, std::uint32_t maps2 = 12,
                 std::uint32_t fc = 32, std::uint32_t classes = 10)
      : ni_(num_images), maps2_(maps2), fc_(fc), classes_(classes) {}

  std::string Name() const override { return "C-NN"; }
  void Setup(mem::DeviceMemory& dev) override;
  std::vector<KernelLaunch> Kernels() override;
  std::vector<std::string> OutputObjects() const override {
    return {"Out_Scores"};
  }
  double OutputError(std::span<const float> golden,
                     std::span<const float> observed) const override;
  double SdcThreshold() const override {
    // More than 10% of classifications changed: a fault in one input
    // image can flip at most that image (1/ni), while corrupted
    // weights misclassify across the whole batch.
    return 0.10;
  }
  std::string MetricName() const override {
    return "fraction of changed classifications";
  }
  std::uint32_t AluCyclesPerMem() const override { return 12; }

  std::uint32_t num_images() const { return ni_; }
  std::uint32_t classes() const { return classes_; }

 private:
  std::uint32_t ni_, maps2_, fc_, classes_;
  exec::ArrayRef<float> images_, w1_, w2_, w3_, w4_;
  exec::ArrayRef<float> n2_, n3_, n4_, scores_;
};

}  // namespace dcrm::apps
