#include "apps/gesummv.h"

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
enum : Pc { kLdA = 1, kLdX1 = 2, kLdB = 3, kLdX2 = 4, kStY = 5 };
constexpr std::uint32_t kCta = 256;
constexpr float kAlpha = 0.75f;
constexpr float kBeta = 0.25f;
}  // namespace

void GesummvApp::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint64_t n2 = std::uint64_t{n_} * n_;
  a_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("A", n2 * 4, true)).base);
  b_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("B", n2 * 4, true)).base);
  x_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("x", n_ * 4, true)).base);
  y_ = exec::ArrayRef<float>(sp.Object(sp.Allocate("y", n_ * 4, false)).base);
  FillUniform(dev, a_.base(), n2, -1.0f, 1.0f, 21);
  FillUniform(dev, b_.base(), n2, -1.0f, 1.0f, 22);
  FillUniform(dev, x_.base(), n_, -1.0f, 1.0f, 23);
  FillConst(dev, y_.base(), n_, 0.0f);
}

std::vector<KernelLaunch> GesummvApp::Kernels() {
  const std::uint32_t n = n_;
  const auto a = a_;
  const auto b = b_;
  const auto x = x_;
  const auto y = y_;

  KernelLaunch k;
  k.name = "gesummv_kernel";
  k.cfg.grid = {(n + kCta - 1) / kCta, 1, 1};
  k.cfg.block = {kCta, 1, 1};
  k.body = [=](exec::ThreadCtx& ctx) {
    const std::uint32_t i =
        ctx.blockIdx().x * ctx.blockDim().x + ctx.threadIdx().x;
    if (i >= n) return;
    float tmp = 0.0f;
    float acc = 0.0f;
    for (std::uint32_t j = 0; j < n; ++j) {
      tmp += a.Ld(ctx, kLdA, std::uint64_t{i} * n + j) * x.Ld(ctx, kLdX1, j);
      acc += b.Ld(ctx, kLdB, std::uint64_t{i} * n + j) * x.Ld(ctx, kLdX2, j);
    }
    y.St(ctx, kStY, i, kAlpha * tmp + kBeta * acc);
  };
  return {std::move(k)};
}

double GesummvApp::OutputError(std::span<const float> golden,
                               std::span<const float> observed) const {
  return metrics::VectorDiffFractionRel(golden, observed, 1e-6, 1e-6);
}

}  // namespace dcrm::apps
