#include "apps/mlp.h"

#include "apps/synth.h"
#include "metrics/error_metric.h"

namespace dcrm::apps {
namespace {
// Static load/store site ids ("PCs"), mirroring the PTX analysis.
enum : Pc {
  kLdX = 1,
  kLdW1 = 2,
  kStH = 3,
  kLdH = 4,
  kLdW2 = 5,
  kStY = 6,
};
constexpr std::uint32_t kCta = 64;

exec::LaunchConfig Cfg1D(std::uint32_t threads) {
  exec::LaunchConfig cfg;
  cfg.grid = {(threads + kCta - 1) / kCta, 1, 1};
  cfg.block = {kCta, 1, 1};
  return cfg;
}
}  // namespace

void Mlp2App::Setup(mem::DeviceMemory& dev) {
  auto& sp = dev.space();
  const std::uint32_t half = batch_ / 2;
  const std::uint32_t rest = batch_ - half;
  x_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("X", std::uint64_t{batch_} * in_ * 4, true))
          .base);
  w1_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("W1", std::uint64_t{in_} * hidden_ * 4, true))
          .base);
  w2_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("W2", std::uint64_t{hidden_} * out_ * 4, true))
          .base);
  h0_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("h0", std::uint64_t{half} * hidden_ * 4, false))
          .base);
  h1_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("h1", std::uint64_t{rest} * hidden_ * 4, false))
          .base);
  y_ = exec::ArrayRef<float>(
      sp.Object(sp.Allocate("Y", std::uint64_t{batch_} * out_ * 4, false))
          .base);
  FillUniform(dev, x_.base(), std::uint64_t{batch_} * in_, -1.0f, 1.0f, 31);
  FillUniform(dev, w1_.base(), std::uint64_t{in_} * hidden_, -0.5f, 0.5f,
              32);
  FillUniform(dev, w2_.base(), std::uint64_t{hidden_} * out_, -0.5f, 0.5f,
              33);
  FillConst(dev, h0_.base(), std::uint64_t{half} * hidden_, 0.0f);
  FillConst(dev, h1_.base(), std::uint64_t{rest} * hidden_, 0.0f);
  FillConst(dev, y_.base(), std::uint64_t{batch_} * out_, 0.0f);
}

exec::KernelGraph Mlp2App::Graph() {
  const std::uint32_t in = in_;
  const std::uint32_t hidden = hidden_;
  const std::uint32_t out_dim = out_;
  const std::uint32_t half = batch_ / 2;
  const auto x = x_;
  const auto w1 = w1_;
  const auto w2 = w2_;
  const auto y = y_;

  exec::KernelGraph g;
  const struct Chunk {
    std::uint32_t row0;
    std::uint32_t rows;
    const char* hname;
    exec::ArrayRef<float> h;
  } chunks[2] = {{0, half, "h0", h0_},
                 {half, batch_ - half, "h1", h1_}};

  for (const Chunk& c : chunks) {
    const std::uint32_t row0 = c.row0;
    const std::uint32_t rows = c.rows;
    const auto h = c.h;
    exec::GraphNode fc1;
    fc1.name = "fc1";
    fc1.cfg = Cfg1D(rows * hidden);
    fc1.reads = {"X", "W1"};
    fc1.writes = {c.hname};
    fc1.body = [=](exec::ThreadCtx& tc) {
      const std::uint32_t t =
          tc.blockIdx().x * tc.blockDim().x + tc.threadIdx().x;
      if (t >= rows * hidden) return;
      const std::uint32_t r = t / hidden;
      const std::uint32_t j = t % hidden;
      float acc = 0.0f;
      for (std::uint32_t e = 0; e < in; ++e) {
        acc += x.Ld(tc, kLdX, std::uint64_t{row0 + r} * in + e) *
               w1.Ld(tc, kLdW1, std::uint64_t{e} * hidden + j);
      }
      h.St(tc, kStH, std::uint64_t{r} * hidden + j,
           acc > 0.0f ? acc : 0.0f);  // fused ReLU
    };
    g.AddNode(std::move(fc1));
  }

  for (const Chunk& c : chunks) {
    const std::uint32_t row0 = c.row0;
    const std::uint32_t rows = c.rows;
    const auto h = c.h;
    exec::GraphNode fc2;
    fc2.name = "fc2";
    fc2.cfg = Cfg1D(rows * out_dim);
    fc2.reads = {c.hname, "W2"};
    fc2.writes = {"Y"};
    fc2.body = [=](exec::ThreadCtx& tc) {
      const std::uint32_t t =
          tc.blockIdx().x * tc.blockDim().x + tc.threadIdx().x;
      if (t >= rows * out_dim) return;
      const std::uint32_t r = t / out_dim;
      const std::uint32_t j = t % out_dim;
      float acc = 0.0f;
      for (std::uint32_t e = 0; e < hidden; ++e) {
        acc += h.Ld(tc, kLdH, std::uint64_t{r} * hidden + e) *
               w2.Ld(tc, kLdW2, std::uint64_t{e} * out_dim + j);
      }
      y.St(tc, kStY, std::uint64_t{row0 + r} * out_dim + j, acc);
    };
    g.AddNode(std::move(fc2));
  }

  g.ConnectByObjects();
  return g;
}

double Mlp2App::OutputError(std::span<const float> golden,
                            std::span<const float> observed) const {
  return metrics::VectorDiffFractionRel(golden, observed, 1e-6, 1e-6);
}

}  // namespace dcrm::apps
