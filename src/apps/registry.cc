#include "apps/registry.h"

#include <stdexcept>

#include "apps/atax.h"
#include "apps/bicg.h"
#include "apps/blackscholes.h"
#include "apps/gesummv.h"
#include "apps/convolution.h"
#include "apps/gramschmidt.h"
#include "apps/histogram.h"
#include "apps/image_filters.h"
#include "apps/mlp.h"
#include "apps/mvt.h"
#include "apps/nn.h"
#include "apps/srad.h"
#include "apps/transformer.h"

namespace dcrm::apps {

std::unique_ptr<App> MakeApp(std::string_view name, AppScale scale) {
  const int s = static_cast<int>(scale);
  if (name == "C-NN") {
    // (images, second-layer maps, fc neurons, classes). Weight reuse —
    // and therefore hot intensity — scales with the image count, so
    // even the tiny scale keeps several images.
    static constexpr std::uint32_t ni[] = {6, 10, 24};
    static constexpr std::uint32_t m2[] = {8, 12, 20};
    static constexpr std::uint32_t fc[] = {24, 32, 64};
    return std::make_unique<NnApp>(ni[s], m2[s], fc[s], 10);
  }
  if (name == "P-BICG") {
    static constexpr std::uint32_t n[] = {96, 256, 1536};
    return std::make_unique<BicgApp>(n[s], n[s]);
  }
  if (name == "P-ATAX") {
    static constexpr std::uint32_t n[] = {96, 256, 1536};
    return std::make_unique<AtaxApp>(n[s], n[s]);
  }
  if (name == "C-ConvRows") {
    static constexpr std::uint32_t n[] = {64, 128, 320};
    return std::make_unique<ConvolutionRowsApp>(n[s], n[s], 8);
  }
  if (name == "C-Histogram") {
    static constexpr std::uint32_t n[] = {16384, 65536, 262144};
    static constexpr std::uint32_t t[] = {128, 256, 512};
    return std::make_unique<HistogramApp>(n[s], t[s], 64);
  }
  if (name == "P-GESUMMV") {
    static constexpr std::uint32_t n[] = {96, 256, 1024};
    return std::make_unique<GesummvApp>(n[s]);
  }
  if (name == "P-MVT") {
    static constexpr std::uint32_t n[] = {96, 256, 1536};
    return std::make_unique<MvtApp>(n[s]);
  }
  if (name == "A-Laplacian") {
    static constexpr std::uint32_t n[] = {64, 128, 320};
    return std::make_unique<LaplacianApp>(n[s], n[s]);
  }
  if (name == "A-Meanfilter") {
    static constexpr std::uint32_t n[] = {64, 128, 320};
    return std::make_unique<MeanfilterApp>(n[s], n[s]);
  }
  if (name == "A-Sobel") {
    static constexpr std::uint32_t n[] = {64, 128, 320};
    return std::make_unique<SobelApp>(n[s], n[s]);
  }
  if (name == "A-SRAD") {
    static constexpr std::uint32_t n[] = {64, 128, 288};
    return std::make_unique<SradApp>(n[s], n[s]);
  }
  if (name == "C-BlackScholes") {
    static constexpr std::uint32_t n[] = {4096, 16384, 65536};
    return std::make_unique<BlackScholesApp>(n[s]);
  }
  if (name == "P-GRAMSCHM") {
    static constexpr std::uint32_t n[] = {96, 128, 256};
    static constexpr std::uint32_t k[] = {24, 32, 64};
    return std::make_unique<GramSchmidtApp>(n[s], k[s]);
  }
  if (name == "L-Transformer" || name == "transformer") {
    // (sequence length, model dim). Even tiny keeps enough rows for
    // two GEMM chunks and a few warps per launch.
    static constexpr std::uint32_t seq[] = {16, 32, 64};
    static constexpr std::uint32_t dim[] = {16, 32, 48};
    return std::make_unique<TransformerApp>(seq[s], dim[s]);
  }
  if (name == "L-MLP2" || name == "mlp2") {
    // (batch, input dim, hidden dim, output dim).
    static constexpr std::uint32_t n[] = {16, 32, 64};
    static constexpr std::uint32_t i[] = {24, 32, 48};
    static constexpr std::uint32_t h[] = {24, 32, 48};
    static constexpr std::uint32_t o[] = {12, 16, 24};
    return std::make_unique<Mlp2App>(n[s], i[s], h[s], o[s]);
  }
  throw std::invalid_argument("unknown application: " + std::string(name));
}

const std::vector<std::string>& PaperAppNames() {
  static const std::vector<std::string> names = {
      "C-NN",        "P-BICG",       "P-GESUMMV", "P-MVT",
      "A-Laplacian", "A-Meanfilter", "A-Sobel",   "A-SRAD"};
  return names;
}

const std::vector<std::string>& HotPatternAppNames() {
  // The paper's eight Table II applications plus two suite-mates with
  // the same knee-shaped profile (P-ATAX and the CUDA SDK separable
  // convolution).
  static const std::vector<std::string> names = {
      "C-NN",        "P-BICG",       "P-GESUMMV", "P-MVT",
      "A-Laplacian", "A-Meanfilter", "A-Sobel",   "A-SRAD",
      "P-ATAX",      "C-ConvRows"};
  return names;
}

const std::vector<std::string>& GraphAppNames() {
  static const std::vector<std::string> names = {"L-Transformer", "L-MLP2"};
  return names;
}

const std::vector<std::string>& AllAppNames() {
  static const std::vector<std::string> names = {
      "C-NN",        "P-BICG",       "P-GESUMMV", "P-MVT",
      "A-Laplacian", "A-Meanfilter", "A-Sobel",   "A-SRAD",
      "P-ATAX",      "C-ConvRows",   "C-Histogram",
      "C-BlackScholes", "P-GRAMSCHM", "L-Transformer", "L-MLP2"};
  return names;
}

}  // namespace dcrm::apps
