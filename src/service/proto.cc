#include "service/proto.h"

#include <limits>

#include "common/json.h"

namespace dcrm::service {

namespace {

[[noreturn]] void Fail(const std::string& what) { throw ProtoError(what); }

// Bounds on untrusted numerics: generous for real use, tight enough
// that a hostile request cannot make the daemon allocate or loop
// absurdly.
constexpr std::int64_t kMaxRuns = 100'000'000;
constexpr std::int64_t kMaxSmallCount = 1'000'000;
constexpr std::size_t kMaxNameBytes = 256;
constexpr std::size_t kMaxPathBytes = 4096;
constexpr std::size_t kMaxObjects = 256;

RequestType ParseType(const std::string& s) {
  const std::optional<RequestType> t = RequestTypeFromName(s);
  if (!t.has_value()) Fail("unknown request type: " + s);
  return *t;
}

apps::AppScale ParseScale(const std::string& s) {
  if (s == "tiny") return apps::AppScale::kTiny;
  if (s == "small") return apps::AppScale::kSmall;
  if (s == "medium") return apps::AppScale::kMedium;
  Fail("unknown scale: " + s);
}

sim::Scheme ParseScheme(const std::string& s) {
  if (s == "none") return sim::Scheme::kNone;
  if (s == "detect") return sim::Scheme::kDetectOnly;
  if (s == "correct") return sim::Scheme::kDetectCorrect;
  Fail("unknown scheme: " + s);
}

fault::Target ParseTarget(const std::string& s) {
  if (s == "hot") return fault::Target::kHotBlocks;
  if (s == "rest") return fault::Target::kRestBlocks;
  if (s == "miss") return fault::Target::kMissWeighted;
  Fail("unknown target: " + s);
}

sim::SimEngine ParseEngine(const std::string& s) {
  if (s == "cycle") return sim::SimEngine::kCycleStepped;
  if (s == "event") return sim::SimEngine::kEventDriven;
  Fail("unknown engine: " + s);
}

const std::string& Str(const json::Value& v, const char* key,
                       std::size_t max_bytes) {
  if (!v.IsString()) Fail(std::string(key) + " must be a string");
  const std::string& s = v.AsString();
  if (s.empty() || s.size() > max_bytes) {
    Fail(std::string(key) + " length out of range");
  }
  return s;
}

std::int64_t Int(const json::Value& v, const char* key, std::int64_t lo,
                 std::int64_t hi) {
  if (!v.IsInt()) Fail(std::string(key) + " must be an integer");
  const std::int64_t n = v.AsInt();
  if (n < lo || n > hi) Fail(std::string(key) + " out of range");
  return n;
}

bool Bool(const json::Value& v, const char* key) {
  if (!v.IsBool()) Fail(std::string(key) + " must be a boolean");
  return v.AsBool();
}

}  // namespace

std::optional<RequestType> RequestTypeFromName(const std::string& name) {
  if (name == "profile") return RequestType::kProfile;
  if (name == "timing") return RequestType::kTiming;
  if (name == "analyze") return RequestType::kAnalyze;
  if (name == "avf") return RequestType::kAvf;
  if (name == "campaign") return RequestType::kCampaign;
  if (name == "stats") return RequestType::kStats;
  if (name == "shutdown") return RequestType::kShutdown;
  return std::nullopt;
}

const char* RequestTypeName(RequestType t) {
  switch (t) {
    case RequestType::kProfile: return "profile";
    case RequestType::kTiming: return "timing";
    case RequestType::kAnalyze: return "analyze";
    case RequestType::kAvf: return "avf";
    case RequestType::kCampaign: return "campaign";
    case RequestType::kStats: return "stats";
    case RequestType::kShutdown: return "shutdown";
  }
  return "?";
}

std::string EncodeRequest(const RequestSpec& req) {
  const fault::ShardCampaignSpec& c = req.campaign;
  json::Value o = json::Value::MakeObject();
  o.Set("type", RequestTypeName(req.type));
  if (req.type == RequestType::kStats || req.type == RequestType::kShutdown) {
    return o.Dump();
  }
  o.Set("app", c.app);
  o.Set("scale", fault::ScaleFlagName(c.scale));
  o.Set("scheme", fault::SchemeFlagName(c.scheme));
  if (c.cover.has_value()) o.Set("cover", *c.cover);
  if (!c.objects.empty()) {
    json::Value a = json::Value::MakeArray();
    for (const std::string& name : c.objects) a.Push(name);
    o.Set("objects", std::move(a));
  }
  if (c.allow_unsound) o.Set("allow_unsound", true);
  o.Set("target", fault::TargetFlagName(c.target));
  o.Set("blocks", c.faulty_blocks);
  o.Set("bits", c.bits_per_block);
  o.Set("runs", c.runs);
  o.Set("seed", static_cast<std::int64_t>(c.seed));
  o.Set("recovery", c.recovery_retries);
  o.Set("epoch", c.escalation_epoch);
  if (req.importance_sampling) o.Set("importance_sampling", true);
  if (req.engine.has_value()) {
    o.Set("engine", sim::EngineName(*req.engine));
  }
  if (!req.trace_path.empty()) o.Set("trace", req.trace_path);
  return o.Dump();
}

RequestSpec DecodeRequest(const std::string& payload) {
  json::Value root;
  try {
    root = json::Value::Parse(payload);
  } catch (const json::ParseError& e) {
    Fail(std::string("malformed request: ") + e.what());
  }
  if (!root.IsObject()) Fail("request must be a JSON object");

  RequestSpec req;
  bool saw_type = false;
  bool saw_app = false;
  for (const auto& [key, v] : root.AsObject()) {
    if (key == "type") {
      req.type = ParseType(Str(v, "type", kMaxNameBytes));
      saw_type = true;
    } else if (key == "app") {
      req.campaign.app = Str(v, "app", kMaxNameBytes);
      saw_app = true;
    } else if (key == "scale") {
      req.campaign.scale = ParseScale(Str(v, "scale", kMaxNameBytes));
    } else if (key == "scheme") {
      req.campaign.scheme = ParseScheme(Str(v, "scheme", kMaxNameBytes));
    } else if (key == "cover") {
      req.campaign.cover =
          static_cast<unsigned>(Int(v, "cover", 0, kMaxSmallCount));
    } else if (key == "objects") {
      if (!v.IsArray()) Fail("objects must be an array");
      if (v.AsArray().size() > kMaxObjects) Fail("objects out of range");
      for (const json::Value& name : v.AsArray()) {
        req.campaign.objects.push_back(Str(name, "objects[]", kMaxNameBytes));
      }
    } else if (key == "allow_unsound") {
      req.campaign.allow_unsound = Bool(v, "allow_unsound");
    } else if (key == "target") {
      req.campaign.target = ParseTarget(Str(v, "target", kMaxNameBytes));
    } else if (key == "blocks") {
      req.campaign.faulty_blocks =
          static_cast<unsigned>(Int(v, "blocks", 1, kMaxSmallCount));
    } else if (key == "bits") {
      req.campaign.bits_per_block =
          static_cast<unsigned>(Int(v, "bits", 1, kMaxSmallCount));
    } else if (key == "runs") {
      req.campaign.runs = static_cast<unsigned>(Int(v, "runs", 1, kMaxRuns));
    } else if (key == "seed") {
      if (!v.IsInt()) Fail("seed must be an integer");
      req.campaign.seed = static_cast<std::uint64_t>(v.AsInt());
    } else if (key == "recovery") {
      req.campaign.recovery_retries =
          static_cast<unsigned>(Int(v, "recovery", 0, kMaxSmallCount));
    } else if (key == "epoch") {
      req.campaign.escalation_epoch =
          static_cast<unsigned>(Int(v, "epoch", 1, kMaxSmallCount));
    } else if (key == "importance_sampling") {
      req.importance_sampling = Bool(v, "importance_sampling");
    } else if (key == "engine") {
      req.engine = ParseEngine(Str(v, "engine", kMaxNameBytes));
    } else if (key == "trace") {
      req.trace_path = Str(v, "trace", kMaxPathBytes);
    } else {
      Fail("unknown request key: " + key);
    }
  }
  if (!saw_type) Fail("request is missing \"type\"");
  const bool needs_app = req.type != RequestType::kStats &&
                         req.type != RequestType::kShutdown;
  if (needs_app && !saw_app) {
    Fail(std::string(RequestTypeName(req.type)) +
         " request is missing \"app\"");
  }
  return req;
}

std::string EncodeResponse(const Response& resp) {
  json::Value o = json::Value::MakeObject();
  o.Set("ok", resp.ok);
  if (!resp.error.empty()) o.Set("error", resp.error);
  o.Set("exit_code", resp.exit_code);
  o.Set("cached", resp.cached);
  o.Set("batched", resp.batched);
  if (!resp.text.empty()) o.Set("text", resp.text);
  if (!resp.csv.empty()) o.Set("csv", resp.csv);
  if (!resp.extra.empty()) o.Set("extra", resp.extra);
  return o.Dump();
}

Response DecodeResponse(const std::string& payload) {
  json::Value root;
  try {
    root = json::Value::Parse(payload);
  } catch (const json::ParseError& e) {
    Fail(std::string("malformed response: ") + e.what());
  }
  if (!root.IsObject()) Fail("response must be a JSON object");
  Response resp;
  for (const auto& [key, v] : root.AsObject()) {
    if (key == "ok") {
      resp.ok = Bool(v, "ok");
    } else if (key == "error") {
      if (!v.IsString()) Fail("error must be a string");
      resp.error = v.AsString();
    } else if (key == "exit_code") {
      resp.exit_code = static_cast<int>(
          Int(v, "exit_code", std::numeric_limits<int>::min(),
              std::numeric_limits<int>::max()));
    } else if (key == "cached") {
      resp.cached = Bool(v, "cached");
    } else if (key == "batched") {
      resp.batched = Bool(v, "batched");
    } else if (key == "text") {
      if (!v.IsString()) Fail("text must be a string");
      resp.text = v.AsString();
    } else if (key == "csv") {
      if (!v.IsString()) Fail("csv must be a string");
      resp.csv = v.AsString();
    } else if (key == "extra") {
      if (!v.IsString()) Fail("extra must be a string");
      resp.extra = v.AsString();
    } else {
      Fail("unknown response key: " + key);
    }
  }
  return resp;
}

}  // namespace dcrm::service
