#include "service/scheduler.h"

#include <stdexcept>
#include <utility>

namespace dcrm::service {

RequestScheduler::RequestScheduler(ExecContext& ctx) : ctx_(ctx) {
  executor_ = std::thread([this] { Loop(); });
}

RequestScheduler::~RequestScheduler() { Drain(); }

std::future<ServedResult> RequestScheduler::Submit(RequestSpec req) {
  // The key walk may probe trace files; keep it outside the lock.
  const std::uint64_t key = ctx_.BatchKey(req);
  Pending p;
  p.spec = std::move(req);
  p.key = key;
  std::future<ServedResult> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) throw std::runtime_error("service is draining");
    queue_.push_back(std::move(p));
    ++stats_.submitted;
  }
  cv_.notify_one();
  return fut;
}

void RequestScheduler::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && !executor_.joinable()) return;
    draining_ = true;
  }
  cv_.notify_one();
  if (executor_.joinable()) executor_.join();
}

SchedulerStats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RequestScheduler::Loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty() && draining_) return;
      batch.swap(queue_);
    }
    Dispatch(std::move(batch));
  }
}

void RequestScheduler::Dispatch(std::vector<Pending> batch) {
  // Group by batch key, preserving first-arrival order both across
  // groups and within one.
  std::vector<bool> done(batch.size(), false);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (done[i]) continue;
    std::vector<std::size_t> group{i};
    if (batch[i].key != 0) {
      for (std::size_t j = i + 1; j < batch.size(); ++j) {
        if (!done[j] && batch[j].key == batch[i].key) group.push_back(j);
      }
    }
    for (const std::size_t g : group) done[g] = true;

    if (group.size() > 1) {
      std::vector<RequestSpec> specs;
      specs.reserve(group.size());
      for (const std::size_t g : group) specs.push_back(batch[g].spec);
      const std::vector<ServedResult> results =
          ctx_.ExecuteCampaignBatch(specs);
      for (std::size_t k = 0; k < group.size(); ++k) {
        batch[group[k]].promise.set_value(results[k]);
      }
    } else {
      batch[i].promise.set_value(ctx_.Execute(batch[i].spec));
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.executed += group.size();
  }
}

}  // namespace dcrm::service
