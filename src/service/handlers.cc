#include "service/handlers.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/analysis.h"
#include "analysis/vulnerability.h"
#include "apps/driver.h"
#include "apps/registry.h"
#include "common/binio.h"
#include "core/protection.h"
#include "core/recovery.h"
#include "fault/parallel_campaign.h"
#include "fault/shard_io.h"
#include "mem/device_memory.h"
#include "service/render.h"
#include "sim/config_io.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"

namespace dcrm::service {

namespace {

// A profiled application pinned in the cache: the App instance must
// stay alive (and is mutated by driver runs, hence the single-executor
// contract) alongside its ProfileResult.
struct ProfileArtifact {
  std::unique_ptr<apps::App> app;
  apps::ProfileResult profile;
  // Content checksum of the serialized trace store — the same value a
  // --save-trace artifact of this profile would carry in its tail, so
  // self-profiled and trace-backed requests meet at one identity.
  std::uint64_t trace_checksum = 0;
};

std::string CoverMark(const std::optional<unsigned>& cover) {
  return cover.has_value() ? std::to_string(*cover) : "auto";
}

std::string ObjectsMark(const std::vector<std::string>& objects) {
  std::string s;
  for (const std::string& o : objects) {
    s += o;
    s += ',';
  }
  return s;
}

// The request's trace identity: the artifact's stored tail checksum
// (an O(1) probe — the LoadTrace fast path this PR adds), or "self"
// for daemon-profiled traces, which are deterministic per
// (app, scale, gpu) and therefore content-stable without a checksum.
std::string TraceMark(const RequestSpec& req) {
  if (req.trace_path.empty()) return "self";
  return std::to_string(trace::ProbeTraceTail(req.trace_path).checksum);
}

// CLI exit-code mapping (tools/dcrm_cli.cc main's catch ladder), as an
// ok=false result instead of a process exit.
ServedResult ErrorResult(const std::exception& e) {
  ServedResult r;
  r.ok = false;
  if (const auto* u = dynamic_cast<const analysis::UnsoundPlanError*>(&e)) {
    std::ostringstream os;
    os << "error: " << u->what() << '\n';
    analysis::WriteText(u->report(), os);
    r.error = os.str();
    r.exit_code = analysis::kExitViolations;
    return r;
  }
  if (const auto* d = dynamic_cast<const core::DetectionTerminated*>(&e)) {
    std::ostringstream os;
    os << "reliability: detection terminated the run (pc=" << d->pc()
       << ", addr=0x" << std::hex << d->addr() << std::dec << ")";
    r.error = os.str();
    r.exit_code = 3;
    return r;
  }
  if (const auto* d = dynamic_cast<const mem::DueError*>(&e)) {
    std::ostringstream os;
    os << "reliability: SECDED uncorrectable error (addr=0x" << std::hex
       << d->addr() << std::dec << ")";
    r.error = os.str();
    r.exit_code = 4;
    return r;
  }
  r.error = std::string("error: ") + e.what();
  r.exit_code = 1;
  return r;
}

std::uint64_t TablesBytes(const fault::CampaignTables& t) {
  const std::uint64_t vec_words =
      t.split.hot.size() + t.split.rest.size() + t.weighted_blocks.size() +
      t.weight_prefix.size() + t.reachable_hot.size() +
      t.reachable_rest.size() + t.reachable_weighted.size() +
      t.reachable_weight_prefix.size();
  return t.snapshot.size() + vec_words * sizeof(std::uint64_t) + 4096;
}

std::uint64_t ProfileBytes(const ProfileArtifact& art) {
  const apps::ProfileResult& p = art.profile;
  std::uint64_t bytes = p.golden.size() * sizeof(float) + (1u << 20);
  if (p.trace_store != nullptr) bytes += p.trace_store->FootprintBytes();
  return bytes;
}

std::uint64_t ResultBytes(const ServedResult& r) {
  return r.text.size() + r.csv.size() + r.error.size() + 512;
}

}  // namespace

ExecContext::ExecContext(ExecOptions opts)
    : opts_(opts), cache_(opts.cache_bytes) {}

BatchStats ExecContext::batch_stats() const {
  BatchStats s;
  s.groups = groups_.load(std::memory_order_relaxed);
  s.grouped_requests = grouped_requests_.load(std::memory_order_relaxed);
  s.trials_saved = trials_saved_.load(std::memory_order_relaxed);
  return s;
}

namespace {

sim::GpuConfig EffectiveGpu(const ExecOptions& opts, const RequestSpec& req) {
  sim::GpuConfig gpu = opts.gpu;
  if (req.engine.has_value()) gpu.engine = *req.engine;
  return gpu;
}

// "app=..|scale=..|gpu=<hash>|trace=<mark>" — everything upstream of
// the per-type parameters. The gpu hash is FNV-1a over the full
// DumpGpuConfig dump, so any config difference (including the engine
// line) separates cache identities automatically.
std::string BaseKey(const fault::ShardCampaignSpec& c,
                    const sim::GpuConfig& gpu, const std::string& mark) {
  return "app=" + c.app + "|scale=" + fault::ScaleFlagName(c.scale) +
         "|gpu=" + std::to_string(bin::Fnv1a(sim::DumpGpuConfig(gpu))) +
         "|trace=" + mark;
}

std::string PlanParams(const fault::ShardCampaignSpec& c) {
  return std::string("scheme=") + fault::SchemeFlagName(c.scheme) +
         "|cover=" + CoverMark(c.cover) + "|objects=" +
         ObjectsMark(c.objects) + "|unsound=" + (c.allow_unsound ? "1" : "0");
}

std::string CampaignKey(std::uint64_t fingerprint, bool importance) {
  return "campaign|" + std::to_string(fingerprint) +
         "|is=" + (importance ? "1" : "0");
}

// The cache key of a request's finished result. Throws on an
// unreadable trace artifact (TryCached swallows that; the slow path
// reports it).
std::string ResultKey(const ExecOptions& opts, const RequestSpec& req) {
  const fault::ShardCampaignSpec& c = req.campaign;
  const sim::GpuConfig gpu = EffectiveGpu(opts, req);
  if (req.type == RequestType::kCampaign) {
    fault::ShardCampaignSpec eff = c;
    eff.gpu = gpu;
    const std::uint64_t ck =
        req.trace_path.empty()
            ? 0
            : trace::ProbeTraceTail(req.trace_path).checksum;
    return CampaignKey(fault::CampaignFingerprint(eff, ck),
                       req.importance_sampling);
  }
  const std::string base = BaseKey(c, gpu, TraceMark(req));
  switch (req.type) {
    case RequestType::kProfile:
      return "result|profile|" + base;
    case RequestType::kTiming:
      return "result|timing|" + base + "|scheme=" +
             fault::SchemeFlagName(c.scheme) + "|cover=" + CoverMark(c.cover);
    case RequestType::kAnalyze:
      return "result|analyze|" + base + "|" + PlanParams(c);
    case RequestType::kAvf:
      return "result|avf|" + base + "|" + PlanParams(c) +
             "|blocks=" + std::to_string(c.faulty_blocks) +
             "|bits=" + std::to_string(c.bits_per_block);
    default:
      throw std::invalid_argument("request type has no result key");
  }
}

// Loads-or-profiles the request's application, cached under the base
// key. Trace-backed requests go through the "trace|<checksum>" store
// cache: the O(1) tail probe decides identity, and the full
// checksum-validating LoadTraceFile runs only on the first touch of
// each distinct artifact.
std::shared_ptr<const ProfileArtifact> ResolveProfile(
    ArtifactCache& cache, const RequestSpec& req, const sim::GpuConfig& gpu,
    const std::string& base) {
  const std::string key = "profile|" + base;
  if (auto hit = cache.Get<ProfileArtifact>(key)) return hit;

  std::shared_ptr<const trace::TraceStore> preloaded;
  std::uint64_t file_ck = 0;
  if (!req.trace_path.empty()) {
    file_ck = trace::ProbeTraceTail(req.trace_path).checksum;
    const std::string trace_key = "trace|" + std::to_string(file_ck);
    preloaded = cache.Get<trace::TraceStore>(trace_key);
    if (preloaded == nullptr) {
      preloaded = trace::LoadTraceFile(req.trace_path);
      cache.Put(trace_key, preloaded, preloaded->FootprintBytes());
    }
  }

  auto art = std::make_shared<ProfileArtifact>();
  art->app = apps::MakeApp(req.campaign.app, req.campaign.scale);
  art->profile = apps::ProfileApp(*art->app, gpu, {}, std::move(preloaded));
  if (req.trace_path.empty()) {
    // Publish the self-profiled store under its content-true identity
    // too, so a later request replaying a --save-trace artifact of
    // this same profile hits the cache instead of re-loading.
    const std::string bytes =
        trace::SaveTraceToString(*art->profile.trace_store);
    art->trace_checksum = fault::TraceTailChecksum(bytes);
    cache.Put("trace|" + std::to_string(art->trace_checksum),
              art->profile.trace_store,
              art->profile.trace_store->FootprintBytes());
  } else {
    art->trace_checksum = file_ck;
  }
  cache.Put(key, std::static_pointer_cast<const ProfileArtifact>(art),
            ProfileBytes(*art));
  return art;
}

// ---- Per-type handlers, each mirroring its CLI command body.

ServedResult DoProfile(const RequestSpec& req, const ProfileArtifact& art) {
  const apps::ProfileResult& profile = art.profile;
  std::ostringstream os;
  os << req.campaign.app << ": knee ratio " << profile.hot.max_median_ratio
     << "x, hot pattern " << (profile.hot.has_hot_pattern ? "yes" : "no")
     << "\n";
  for (const auto& op : profile.hot.coverage_order) {
    const bool hot = std::any_of(
        profile.hot.hot_objects.begin(), profile.hot.hot_objects.end(),
        [&](const auto& h) { return h.id == op.id; });
    os << "  " << (hot ? "*" : " ") << op.name << "  reads/block "
       << static_cast<std::uint64_t>(op.reads_per_block) << "  warp-share "
       << static_cast<int>(100 * op.mean_warp_share) << "%\n";
  }
  os << "hot footprint " << 100 * profile.hot.hot_footprint
     << "% of application memory, " << 100 * profile.hot.hot_access_share
     << "% of memory transactions\n";
  ServedResult r;
  r.text = os.str();
  return r;
}

ServedResult DoTiming(const RequestSpec& req, const ProfileArtifact& art,
                      const sim::GpuConfig& gpu) {
  apps::App& app = *art.app;
  const apps::ProfileResult& profile = art.profile;
  const unsigned cover = req.campaign.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  const auto base =
      apps::MakeProtectionSetup(app, profile, sim::Scheme::kNone, 0);
  const auto base_stats = apps::RunTiming(app, profile, gpu, base.plan);
  const auto setup =
      apps::MakeProtectionSetup(app, profile, req.campaign.scheme, cover);
  const auto detail = apps::RunTimingDetailed(app, profile, gpu, setup.plan);
  const auto& stats = detail.total;
  std::ostringstream os;
  os << req.campaign.app
     << " scheme=" << sim::SchemeName(req.campaign.scheme)
     << " cover=" << cover << " engine=" << sim::EngineName(gpu.engine)
     << "\n"
     << "cycles " << stats.cycles << " (baseline " << base_stats.cycles
     << ", overhead "
     << 100.0 * (static_cast<double>(stats.cycles) /
                     static_cast<double>(base_stats.cycles) -
                 1.0)
     << "%)\n"
     << "L1 " << stats.l1_hits << " hits / " << stats.l1_pending_hits
     << " pending / " << stats.l1_misses << " misses; replica txns "
     << stats.replica_transactions << "; L2 hits " << stats.l2_hits << "/"
     << stats.l2_accesses << "; DRAM reads " << stats.dram_reads
     << " (row hits " << stats.dram_row_hits << ")\n";
  ServedResult r;
  r.text = os.str();
  r.csv = RenderTimingCsv(detail);
  return r;
}

apps::ProtectionSetup MakePlanSetup(const RequestSpec& req,
                                    const ProfileArtifact& art,
                                    bool force_zero_cover_unprotected) {
  apps::App& app = *art.app;
  const apps::ProfileResult& profile = art.profile;
  if (!req.campaign.objects.empty()) {
    return apps::MakeProtectionSetupForObjects(
        app, profile, req.campaign.scheme, req.campaign.objects);
  }
  unsigned cover = req.campaign.cover.value_or(
      static_cast<unsigned>(profile.hot.hot_objects.size()));
  if (force_zero_cover_unprotected &&
      req.campaign.scheme == sim::Scheme::kNone) {
    cover = 0;
  }
  return apps::MakeProtectionSetup(app, profile, req.campaign.scheme, cover);
}

ServedResult DoAnalyze(const RequestSpec& req, const ProfileArtifact& art,
                       const sim::GpuConfig& gpu) {
  const apps::ProfileResult& profile = art.profile;
  const apps::ProtectionSetup setup =
      MakePlanSetup(req, art, /*force_zero_cover_unprotected=*/false);
  analysis::AnalyzerInput in;
  in.traces = profile.trace_store.get();
  in.space = &setup.dev->space();
  in.plan = &setup.plan;
  in.cfg = gpu;
  // The Tier-1 spare pool a default-configured RecoveryManager would
  // carve out next, so replica-vs-spare aliasing is checked for the
  // layout a recovering campaign will actually run with.
  const core::RecoveryConfig rc;
  in.spare = analysis::SpareRegion{
      setup.dev->space().Brk(),
      std::uint64_t{rc.spare_blocks} * kBlockSize};
  analysis::Report report = analysis::Analyze(in);
  report.Append(analysis::CrossCheckHotClaims(*profile.trace_store,
                                              setup.dev->space(),
                                              profile.hot));
  std::ostringstream os;
  os << req.campaign.app
     << " scheme=" << sim::SchemeName(req.campaign.scheme)
     << " ranges=" << setup.plan.ranges.size()
     << " pcs=" << setup.plan.pcs.size() << "\n";
  trace::WriteKernelStatsText(*profile.trace_store, os);
  analysis::WriteText(report, os);
  std::ostringstream csv;
  analysis::WriteCsv(report, csv);
  trace::WriteKernelStatsCsv(*profile.trace_store, csv);
  ServedResult r;
  r.text = os.str();
  r.csv = csv.str();
  r.exit_code = report.ExitCode();
  return r;
}

ServedResult DoAvf(const RequestSpec& req, const ProfileArtifact& art) {
  const apps::ProfileResult& profile = art.profile;
  const apps::ProtectionSetup setup =
      MakePlanSetup(req, art, /*force_zero_cover_unprotected=*/true);
  const auto map = analysis::AnalyzeVulnerability(
      *profile.trace_store, setup.dev->space(), art.app->OutputObjects());
  std::ostringstream os;
  os << req.campaign.app
     << " scheme=" << sim::SchemeName(req.campaign.scheme)
     << " ranges=" << setup.plan.ranges.size()
     << " pcs=" << setup.plan.pcs.size() << "\n";
  analysis::WriteVulnerabilityText(map, setup.plan, os);

  // Outcome bounds a campaign with these flags would be held to, over
  // the default exposure-weighted universe.
  const auto universe = analysis::BuildExposureUniverse(profile.profiler);
  analysis::BoundsSpec spec;
  spec.faulty_blocks = req.campaign.faulty_blocks;
  spec.multi_bit_words = req.campaign.bits_per_block >= 3;
  spec.due_capable_words = req.campaign.bits_per_block >= 2;
  const auto bounds = analysis::DeriveOutcomeBounds(
      map, setup.plan,
      analysis::TargetUniverse{universe.blocks, universe.weight_prefix},
      spec);
  os << "campaign bounds (miss-weighted, blocks="
     << req.campaign.faulty_blocks << " bits=" << req.campaign.bits_per_block
     << "): sdc<=" << bounds.sdc_max << " masked>=" << bounds.masked_min
     << " over " << bounds.universe_blocks << " blocks ("
     << bounds.sdc_blocks << " SDC-reachable, " << bounds.inert_blocks
     << " inert, reachable weight share " << bounds.sdc_weight_share << ")\n";

  analysis::Report report;
  report.Append(
      analysis::AuditVulnerability(map, setup.dev->space(), setup.plan));
  analysis::WriteText(report, os);
  std::ostringstream csv;
  analysis::WriteVulnerabilityCsv(map, setup.plan, csv);
  ServedResult r;
  r.text = os.str();
  r.csv = csv.str();
  r.exit_code = report.ExitCode();
  return r;
}

}  // namespace

std::uint64_t ExecContext::BatchKey(const RequestSpec& req) const {
  if (req.type != RequestType::kCampaign) return 0;
  // Tier-2 escalation couples trials: a prefix boundary inside a
  // coupled campaign changes when escalations apply. Never merge.
  if (req.campaign.recovery_retries > 0) return 0;
  try {
    fault::ShardCampaignSpec eff = req.campaign;
    eff.gpu = EffectiveGpu(opts_, req);
    eff.runs = 0;  // requests differing only in trial count coalesce
    const std::uint64_t ck =
        req.trace_path.empty()
            ? 0
            : trace::ProbeTraceTail(req.trace_path).checksum;
    std::uint64_t key = fault::CampaignFingerprint(eff, ck);
    if (req.importance_sampling) key ^= 0x9e3779b97f4a7c15ull;
    return key == 0 ? 1 : key;
  } catch (const std::exception&) {
    return 0;  // unreadable trace: let Execute report it, unmerged
  }
}

std::optional<ServedResult> ExecContext::TryCached(const RequestSpec& req) {
  if (req.type == RequestType::kStats || req.type == RequestType::kShutdown) {
    return std::nullopt;
  }
  try {
    const std::string key = ResultKey(opts_, req);
    if (auto hit = cache_.Get<ServedResult>(key)) {
      ServedResult copy = *hit;
      copy.cached = true;
      return copy;
    }
  } catch (const std::exception&) {
    // Probe failures (e.g. unreadable trace) fall through to the slow
    // path, which reports them properly.
  }
  return std::nullopt;
}

ServedResult ExecContext::Execute(const RequestSpec& req) {
  if (req.type == RequestType::kCampaign) {
    const RequestSpec reqs[1] = {req};
    return ExecuteCampaignBatch(reqs)[0];
  }
  try {
    // Re-probe under the executor: an identical request may have
    // filled the cache between the connection thread's probe and now.
    const std::string key = ResultKey(opts_, req);
    if (auto hit = cache_.Get<ServedResult>(key)) {
      ServedResult copy = *hit;
      copy.cached = true;
      return copy;
    }
    const sim::GpuConfig gpu = EffectiveGpu(opts_, req);
    const std::string base = BaseKey(req.campaign, gpu, TraceMark(req));
    const auto art = ResolveProfile(cache_, req, gpu, base);
    ServedResult r;
    switch (req.type) {
      case RequestType::kProfile:
        r = DoProfile(req, *art);
        break;
      case RequestType::kTiming:
        r = DoTiming(req, *art, gpu);
        break;
      case RequestType::kAnalyze:
        r = DoAnalyze(req, *art, gpu);
        break;
      case RequestType::kAvf:
        r = DoAvf(req, *art);
        break;
      default:
        throw std::invalid_argument("request type is not executable");
    }
    cache_.Put(key, std::make_shared<const ServedResult>(r), ResultBytes(r));
    return r;
  } catch (const std::exception& e) {
    return ErrorResult(e);
  }
}

std::vector<ServedResult> ExecContext::ExecuteCampaignBatch(
    std::span<const RequestSpec> reqs) {
  std::vector<ServedResult> out(reqs.size());
  std::vector<std::size_t> miss;
  std::vector<std::string> keys(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    try {
      keys[i] = ResultKey(opts_, reqs[i]);
    } catch (const std::exception& e) {
      out[i] = ErrorResult(e);
      continue;
    }
    if (auto hit = cache_.Get<ServedResult>(keys[i])) {
      out[i] = *hit;
      out[i].cached = true;
    } else {
      miss.push_back(i);
    }
  }
  if (miss.empty()) return out;

  // All members share one BatchKey, hence one campaign definition
  // modulo trial count; the first miss supplies it.
  const RequestSpec& lead = reqs[miss.front()];
  const bool merged = miss.size() > 1;
  try {
    const sim::GpuConfig gpu = EffectiveGpu(opts_, lead);
    const std::string base = BaseKey(lead.campaign, gpu, TraceMark(lead));
    const auto art = ResolveProfile(cache_, lead, gpu, base);
    const apps::ProfileResult& profile = art->profile;
    unsigned cover = lead.campaign.cover.value_or(
        static_cast<unsigned>(profile.hot.hot_objects.size()));
    if (lead.campaign.scheme == sim::Scheme::kNone) cover = 0;

    const std::string tables_key = "tables|" + base + "|" +
                                   PlanParams(lead.campaign);
    auto shared_tables = cache_.Get<fault::CampaignTables>(tables_key);
    const bool had_tables = shared_tables != nullptr;

    fault::CampaignSpec spec;
    const std::string app_name = lead.campaign.app;
    const apps::AppScale scale = lead.campaign.scale;
    spec.make_app = [app_name, scale] {
      return apps::MakeApp(app_name, scale);
    };
    spec.profile = &profile;
    spec.scheme = lead.campaign.scheme;
    spec.cover_objects = cover;
    spec.object_names = lead.campaign.objects;
    spec.allow_unsound = lead.campaign.allow_unsound;
    spec.shared_tables = std::move(shared_tables);
    fault::ParallelCampaign campaign(std::move(spec), opts_.jobs);
    if (!had_tables) {
      auto tables = campaign.front().tables();
      cache_.Put(tables_key, tables, TablesBytes(*tables));
    }

    fault::CampaignConfig cc = fault::MakeCampaignConfig(lead.campaign);
    cc.importance_sampling = lead.importance_sampling;

    // The content-true secondary key for self-profiled runs: the
    // fingerprint a request replaying this profile's --save-trace
    // artifact would compute.
    const auto alt_key = [&](const RequestSpec& req) -> std::string {
      if (!req.trace_path.empty()) return {};
      fault::ShardCampaignSpec eff = req.campaign;
      eff.gpu = gpu;
      return CampaignKey(
          fault::CampaignFingerprint(eff, art->trace_checksum),
          req.importance_sampling);
    };
    const auto publish = [&](std::size_t i, const ServedResult& r) {
      auto entry = std::make_shared<const ServedResult>(r);
      cache_.Put(keys[i], entry, ResultBytes(r));
      const std::string alt = alt_key(reqs[i]);
      if (!alt.empty() && alt != keys[i]) {
        cache_.Put(alt, entry, ResultBytes(r));
      }
    };

    if (cc.importance_sampling &&
        campaign.front().SamplingShare(cc.target) == 0.0) {
      // The static analysis proves every selectable block is either
      // never consumed or fully checked: the SDC rate is exactly zero,
      // no trials required.
      for (const std::size_t i : miss) {
        std::ostringstream os;
        os << reqs[i].campaign.app
           << " scheme=" << sim::SchemeName(reqs[i].campaign.scheme)
           << " cover=" << cover
           << ": importance sampling found no SDC-reachable blocks "
              "in the target set — SDC rate is statically 0, skipping "
           << reqs[i].campaign.runs << " trials\n";
        ServedResult r;
        r.text = os.str();
        out[i] = r;
        publish(i, r);
      }
      return out;
    }

    std::vector<unsigned> ends;
    ends.reserve(miss.size());
    std::uint64_t runs_sum = 0;
    for (const std::size_t i : miss) {
      ends.push_back(reqs[i].campaign.runs);
      runs_sum += reqs[i].campaign.runs;
    }
    std::sort(ends.begin(), ends.end());
    ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
    cc.runs = ends.back();

    fault::EngineOptions eo;
    eo.max_wave = 512;
    const auto prefixes = campaign.RunPrefixes(cc, ends, eo);

    const double share = cc.importance_sampling
                             ? campaign.front().SamplingShare(cc.target)
                             : 0.0;
    std::ostringstream kernel_stats;
    trace::WriteKernelStatsText(*profile.trace_store, kernel_stats);
    for (const std::size_t i : miss) {
      const auto it =
          std::find_if(prefixes.begin(), prefixes.end(), [&](const auto& p) {
            return p.end == reqs[i].campaign.runs;
          });
      ServedResult r;
      r.batched = merged;
      r.text = RenderCampaignSummary(reqs[i].campaign.app,
                                     reqs[i].campaign.scheme, cover, cc,
                                     it->counts, campaign.jobs(), share) +
               kernel_stats.str();
      std::ostringstream csv;
      fault::WriteCountsCsv(it->counts, it->ledger, csv);
      r.csv = csv.str();
      out[i] = r;
      ServedResult stored = r;
      stored.batched = false;  // identity is content, not how it ran
      publish(i, stored);
    }
    if (merged) {
      groups_.fetch_add(1, std::memory_order_relaxed);
      grouped_requests_.fetch_add(miss.size(), std::memory_order_relaxed);
      trials_saved_.fetch_add(runs_sum - ends.back(),
                              std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    // One shared campaign definition, one shared failure.
    for (const std::size_t i : miss) out[i] = ErrorResult(e);
  }
  return out;
}

}  // namespace dcrm::service
