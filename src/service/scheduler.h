// Batched request scheduler (DESIGN.md §14). One executor thread
// drains the whole submission queue each iteration — the natural
// batching window: everything that arrived while the previous batch
// executed is considered together — and groups campaign requests by
// ExecContext::BatchKey so compatible campaigns (identical fingerprint
// modulo trial count, no Tier-2 coupling) run as ONE merged engine
// invocation, split back per request bit-identically.
//
// Connection threads call Submit and block on the returned future;
// promises are always fulfilled (ExecContext maps failures to ok=false
// results), so a waiter can never hang on a lost exception. Drain
// stops intake (further Submits throw), finishes everything already
// queued, and joins the executor — the daemon's graceful-shutdown
// half.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "service/handlers.h"
#include "service/proto.h"

namespace dcrm::service {

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t executed = 0;  // requests whose batch finished
};

class RequestScheduler {
 public:
  explicit RequestScheduler(ExecContext& ctx);
  ~RequestScheduler();
  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  // Enqueues one request. Throws std::runtime_error once Drain has
  // begun (the server answers "service is draining" for those).
  std::future<ServedResult> Submit(RequestSpec req);

  // Stops intake, finishes the queue, joins the executor. Idempotent.
  void Drain();

  SchedulerStats stats() const;

 private:
  struct Pending {
    RequestSpec spec;
    std::uint64_t key = 0;  // 0 = not batchable
    std::promise<ServedResult> promise;
  };

  void Loop();
  void Dispatch(std::vector<Pending> batch);

  ExecContext& ctx_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;
  bool draining_ = false;
  SchedulerStats stats_;
  std::thread executor_;
};

}  // namespace dcrm::service
