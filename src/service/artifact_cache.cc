#include "service/artifact_cache.h"

#include <utility>

namespace dcrm::service {

void ArtifactCache::PutErased(const std::string& key,
                              std::shared_ptr<const void> value,
                              std::type_index type, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place: identical content under content addressing, so
    // only the recency and the size estimate can change.
    stats_.bytes -= it->second->bytes;
    it->second->value = std::move(value);
    it->second->type = type;
    it->second->bytes = bytes;
    stats_.bytes += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value), type, bytes});
    index_[key] = lru_.begin();
    stats_.bytes += bytes;
    ++stats_.insertions;
  }
  while (stats_.bytes > budget_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
  stats_.budget = budget_;
}

}  // namespace dcrm::service
