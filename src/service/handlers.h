// Request execution for the reliability daemon (DESIGN.md §14).
//
// ExecContext owns the content-addressed ArtifactCache and knows how
// to run every request type exactly the way the standalone CLI does —
// same driver calls, same cover resolution, same rendering (via
// service/render.h), so a served response is bit-identical to the
// standalone command's stdout/CSV.
//
// Two layers of reuse:
//  * TryCached is the connection-thread fast path: a pure cache probe
//    (trace identity via the O(1) checksum-tail probe, campaign
//    identity via PR 6's CampaignFingerprint) that never executes
//    anything and never throws.
//  * ExecuteCampaignBatch is the scheduler's coalescing primitive:
//    requests for the SAME campaign fingerprint (modulo trial count)
//    run as ONE engine invocation over the longest requested trial
//    range, split back per request through RunCampaignPrefixes —
//    bit-identical to each request running standalone, at the cost of
//    max(runs) trials instead of sum(runs).
//
// Threading contract: TryCached / BatchKey / stats accessors are safe
// from any thread (the cache has its own lock); Execute and
// ExecuteCampaignBatch must run on a single executor thread (the
// RequestScheduler's), because cached profile artifacts hold live App
// instances that the driver mutates during runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "service/artifact_cache.h"
#include "service/proto.h"

namespace dcrm::service {

// One served request: the standalone command's exit code, stdout text
// and --csv artifact, plus the service-path markers.
struct ServedResult {
  bool ok = true;
  std::string error;  // set when !ok (what the CLI printed to stderr)
  int exit_code = 0;
  bool cached = false;   // served from the artifact cache
  bool batched = false;  // coalesced into a merged campaign run
  std::string text;
  std::string csv;
};

struct ExecOptions {
  std::uint64_t cache_bytes = 256ull * 1024 * 1024;
  sim::GpuConfig gpu;  // daemon-wide base config
  // In-process campaign lanes. Results are bit-identical at any value;
  // it only shows in the summary's "jobs=" field, so keep the default
  // 1 to match plain `dcrm campaign`.
  unsigned jobs = 1;
};

// Coalescing counters (the bench's merge-efficiency numbers).
struct BatchStats {
  std::uint64_t groups = 0;            // merged groups executed
  std::uint64_t grouped_requests = 0;  // requests served via a merge
  std::uint64_t trials_saved = 0;      // sum(runs) - max(runs), summed
};

class ExecContext {
 public:
  explicit ExecContext(ExecOptions opts);

  // Scheduler grouping key: equal nonzero keys may coalesce into one
  // ExecuteCampaignBatch call. Zero = not batchable (non-campaign
  // types; coupled Tier-2 campaigns, whose cross-trial ledger coupling
  // forbids prefix splitting; unreadable trace artifacts). Built from
  // CampaignFingerprint with the trial count zeroed out — requests
  // differing only in `runs` share a key — plus the
  // importance-sampling flag, which the fingerprint predates.
  std::uint64_t BatchKey(const RequestSpec& req) const;

  // Cache-only fast path; never executes, never throws. nullopt on a
  // miss or any probe failure (the slow path will surface the error).
  std::optional<ServedResult> TryCached(const RequestSpec& req);

  // Runs one request end to end (campaigns go through a singleton
  // batch). Never throws: failures come back as ok=false results with
  // the CLI's exit-code mapping.
  ServedResult Execute(const RequestSpec& req);

  // Runs a group of campaign requests with identical BatchKey as one
  // merged engine invocation. Results are positionally matched to
  // `reqs` and marked batched when the group actually merged (>1
  // uncached member).
  std::vector<ServedResult> ExecuteCampaignBatch(
      std::span<const RequestSpec> reqs);

  ArtifactCache& cache() { return cache_; }
  BatchStats batch_stats() const;

 private:
  ExecOptions opts_;
  ArtifactCache cache_;
  std::atomic<std::uint64_t> groups_{0};
  std::atomic<std::uint64_t> grouped_requests_{0};
  std::atomic<std::uint64_t> trials_saved_{0};
};

}  // namespace dcrm::service
