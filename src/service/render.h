// Rendering shared by the standalone CLI and the daemon. The service's
// bit-identity promise ("a served response equals the standalone
// command's output") is enforced by construction: both front ends call
// these functions, so the bytes cannot drift apart.
#pragma once

#include <string>

#include "apps/driver.h"
#include "fault/campaign.h"

namespace dcrm::service {

// The `dcrm timing --csv` artifact: per-component statistics, one row
// per component. Engine name and sim_ticks are deliberately omitted so
// the CSVs of the two engines diff clean when (and only when) they are
// bit-identical; cycles are global, so they appear on the total row
// only.
std::string RenderTimingCsv(const apps::TimingDetail& d);

// The `dcrm campaign` stdout summary block: the header/counts lines,
// the importance-sampling rescale line (when enabled and trials ran),
// and the recovery line (when recovery is enabled). `sampling_share`
// is FaultCampaign::SamplingShare for the configured target; it is
// read only for the importance line.
std::string RenderCampaignSummary(const std::string& app, sim::Scheme scheme,
                                  unsigned cover,
                                  const fault::CampaignConfig& cc,
                                  const fault::CampaignCounts& counts,
                                  unsigned jobs, double sampling_share);

}  // namespace dcrm::service
