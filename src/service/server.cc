#include "service/server.h"

#include <unistd.h>

#include <future>
#include <sstream>
#include <utility>

#include "common/json.h"

namespace dcrm::service {

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), ctx_(opts_.exec), sched_(ctx_) {}

Server::~Server() {
  RequestStop();
  Join();
}

void Server::Start() {
  listener_ = net::ListenUnix(opts_.socket_path);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Server::RequestStop() { stop_.store(true, std::memory_order_relaxed); }

void Server::Join() {
  if (joined_) return;
  joined_ = true;
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Finish everything already queued before tearing connections down:
  // connection threads blocked on futures unblock as their batches
  // complete, write their responses, then see the stop flag.
  sched_.Drain();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (started_) {
    listener_.Close();
    ::unlink(opts_.socket_path.c_str());
    started_ = false;
  }
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::optional<net::UnixSocket> conn;
    try {
      conn = net::AcceptUnix(listener_, /*timeout_ms=*/100);
    } catch (const net::SocketError&) {
      break;  // listener died; the daemon drains
    }
    if (!conn.has_value()) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back(
        [this, c = std::move(*conn)]() mutable {
          HandleConnection(std::move(c));
        });
  }
}

void Server::HandleConnection(net::UnixSocket conn) {
  connections_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    std::optional<std::string> frame;
    try {
      frame = net::ReadFrame(conn.fd(), kMaxRequestBytes, &stop_);
    } catch (const net::FrameTooLarge& e) {
      // Answer, drain the unconsumed payload so the close is a clean
      // EOF instead of a reset, then drop the connection — the stream
      // cannot be resynchronized past the rejected frame.
      Response resp;
      resp.error = e.what();
      try {
        net::WriteFrame(conn.fd(), EncodeResponse(resp));
        net::DiscardBytes(conn.fd(), e.announced(), &stop_);
      } catch (const net::SocketError&) {
      }
      break;
    } catch (const net::SocketError&) {
      break;  // peer vanished mid-frame
    }
    if (!frame.has_value()) break;  // clean close or drain
    std::string encoded;
    try {
      encoded = DispatchFrame(*frame);
    } catch (const std::exception& e) {
      Response resp;
      resp.error = e.what();
      encoded = EncodeResponse(resp);
    }
    try {
      net::WriteFrame(conn.fd(), encoded);
    } catch (const net::SocketError&) {
      break;
    }
  }
}

std::string Server::DispatchFrame(const std::string& frame) {
  Response resp;
  RequestSpec req;
  try {
    req = DecodeRequest(frame);
  } catch (const ProtoError& e) {
    resp.error = e.what();
    return EncodeResponse(resp);
  }

  if (req.type == RequestType::kStats) {
    const CacheStats cs = ctx_.cache().stats();
    const BatchStats bs = ctx_.batch_stats();
    const SchedulerStats ss = sched_.stats();
    json::Value o = json::Value::MakeObject();
    o.Set("cache_hits", static_cast<std::int64_t>(cs.hits));
    o.Set("cache_misses", static_cast<std::int64_t>(cs.misses));
    o.Set("cache_insertions", static_cast<std::int64_t>(cs.insertions));
    o.Set("cache_evictions", static_cast<std::int64_t>(cs.evictions));
    o.Set("cache_entries", static_cast<std::int64_t>(cs.entries));
    o.Set("cache_bytes", static_cast<std::int64_t>(cs.bytes));
    o.Set("cache_budget", static_cast<std::int64_t>(cs.budget));
    o.Set("batch_groups", static_cast<std::int64_t>(bs.groups));
    o.Set("batch_grouped_requests",
          static_cast<std::int64_t>(bs.grouped_requests));
    o.Set("batch_trials_saved", static_cast<std::int64_t>(bs.trials_saved));
    o.Set("requests_submitted", static_cast<std::int64_t>(ss.submitted));
    o.Set("requests_executed", static_cast<std::int64_t>(ss.executed));
    o.Set("connections", static_cast<std::int64_t>(
                             connections_.load(std::memory_order_relaxed)));
    std::ostringstream text;
    text << "cache: " << cs.hits << " hits / " << cs.misses << " misses ("
         << cs.entries << " entries, " << cs.bytes << "/" << cs.budget
         << " bytes, " << cs.evictions << " evictions)\nbatching: "
         << bs.groups << " merged groups, " << bs.grouped_requests
         << " requests, " << bs.trials_saved << " trials saved\n";
    resp.ok = true;
    resp.exit_code = 0;
    resp.text = text.str();
    resp.extra = o.Dump();
    return EncodeResponse(resp);
  }

  if (req.type == RequestType::kShutdown) {
    resp.ok = true;
    resp.exit_code = 0;
    resp.text = "draining\n";
    const std::string encoded = EncodeResponse(resp);
    RequestStop();
    return encoded;
  }

  // Fast path: repeat requests are answered on this connection thread
  // straight from the cache, never queueing behind running campaigns.
  if (auto hit = ctx_.TryCached(req)) {
    resp.ok = hit->ok;
    resp.error = hit->error;
    resp.exit_code = hit->exit_code;
    resp.cached = true;
    resp.batched = hit->batched;
    resp.text = hit->text;
    resp.csv = hit->csv;
    return EncodeResponse(resp);
  }

  std::future<ServedResult> fut;
  try {
    fut = sched_.Submit(std::move(req));
  } catch (const std::exception& e) {
    resp.error = e.what();  // "service is draining"
    return EncodeResponse(resp);
  }
  const ServedResult r = fut.get();
  resp.ok = r.ok;
  resp.error = r.error;
  resp.exit_code = r.exit_code;
  resp.cached = r.cached;
  resp.batched = r.batched;
  resp.text = r.text;
  resp.csv = r.csv;
  return EncodeResponse(resp);
}

}  // namespace dcrm::service
