// Wire protocol of the reliability service (DESIGN.md §14).
//
// One request or response per frame (common/socket.h framing: u32 LE
// length + payload), payload a flat JSON object (common/json.h). The
// request vocabulary is exactly the standalone CLI's flag vocabulary —
// a request names the same campaign definition `dcrm campaign` would
// parse, so the daemon can promise bit-identical results — and decodes
// into the same ShardCampaignSpec the sharded coordinator uses, which
// is what makes PR 6's CampaignFingerprint the service's natural cache
// key.
//
// Robustness rules the decoder enforces on untrusted bytes:
//  * requests are capped at kMaxRequestBytes before allocation
//    (FrameTooLarge drops the connection — the stream cannot be
//    resynchronized past an unconsumed oversized frame);
//  * unknown keys, wrong types, missing required fields and
//    out-of-range numerics all throw ProtoError, which the server maps
//    to an ok=false response without killing the daemon;
//  * uint64 seeds ride as int64 bit patterns (lossless two's-complement
//    round trip; JSON doubles would silently round them).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "fault/shard_coordinator.h"

namespace dcrm::service {

// Frame caps. Requests are small flag maps; responses carry rendered
// reports and CSVs, so the client-side cap is generous.
inline constexpr std::uint32_t kMaxRequestBytes = 64u * 1024;
inline constexpr std::uint32_t kMaxResponseBytes = 64u * 1024 * 1024;

// Service exit codes, continuing the CLI table (README.md): the daemon
// could not bind its socket / the client found nothing listening.
inline constexpr int kExitBindFailed = 10;
inline constexpr int kExitConnectFailed = 11;

class ProtoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RequestType : std::uint8_t {
  kProfile,
  kTiming,
  kAnalyze,
  kAvf,
  kCampaign,
  kStats,     // daemon introspection: cache + scheduler counters
  kShutdown,  // graceful drain; the daemon answers, then stops
};

const char* RequestTypeName(RequestType t);
// nullopt for an unknown name (the CLI's `dcrm request <type>` parse).
std::optional<RequestType> RequestTypeFromName(const std::string& name);

// One decoded request. The campaign spec doubles as the parameter
// carrier for every analysis type (app/scale/scheme/cover/objects/gpu
// are common; target/blocks/bits/runs/seed/recovery/epoch matter to
// campaign, blocks/bits also to avf) — identical to how CliArgs feeds
// every CLI command from one flag set.
struct RequestSpec {
  RequestType type = RequestType::kStats;
  fault::ShardCampaignSpec campaign;
  bool importance_sampling = false;
  // Replay-engine override (--engine=cycle|event). The daemon runs its
  // own base GpuConfig; a request may switch engines — bit-identical
  // results by the engine differential contract, but a distinct cache
  // identity (the gpu hash covers the engine line).
  std::optional<sim::SimEngine> engine;
  // Daemon-local path of a saved trace artifact to replay, as
  // --load-trace; empty = the daemon profiles the app itself (and
  // caches that).
  std::string trace_path;
};

// What the daemon sends back for any request.
struct Response {
  bool ok = false;
  std::string error;  // set when !ok
  // The exit code the standalone CLI command would have returned
  // (analyzer verdicts make success codes 5/6 meaningful).
  int exit_code = 1;
  bool cached = false;   // served from the artifact cache
  bool batched = false;  // coalesced with other campaign requests
  std::string text;      // what standalone dcrm printed on stdout
  std::string csv;       // the --csv artifact (empty when n/a)
  std::string extra;     // stats payload (JSON object text), else empty
};

std::string EncodeRequest(const RequestSpec& req);
// Throws ProtoError on malformed input (also wraps json::ParseError).
RequestSpec DecodeRequest(const std::string& payload);

std::string EncodeResponse(const Response& resp);
Response DecodeResponse(const std::string& payload);

}  // namespace dcrm::service
