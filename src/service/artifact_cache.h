// Content-addressed artifact cache (DESIGN.md §14). The daemon's
// repeat-request fast path: every expensive intermediate — loaded
// TraceStores, profiled apps, worker-0 CampaignTables, rendered
// analyzer/AVF verdicts, finished campaign results — is keyed by what
// it *is*, not when it was computed, reusing PR 6's identity scheme
// (CampaignFingerprint / trace tail checksums), so two requests that
// would run the same computation share one cache line by construction.
//
// Eviction is byte-budgeted LRU over caller-supplied size estimates.
// Values are type-erased shared_ptr<const T>: readers keep an artifact
// alive after eviction, so eviction can never invalidate an in-flight
// request. A single entry larger than the whole budget is admitted
// alone (callers should not have to special-case huge traces); it is
// evicted as soon as the next insert lands.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>

namespace dcrm::service {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  // current
  std::uint64_t bytes = 0;    // current estimated total
  std::uint64_t budget = 0;

  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ArtifactCache {
 public:
  explicit ArtifactCache(std::uint64_t budget_bytes)
      : budget_(budget_bytes) {}
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  // Returns the cached artifact and bumps it to most-recent, or null.
  // A key held under a different T is a miss (cannot happen with the
  // disjoint key prefixes the handlers use; the type check is the
  // type-erasure safety net, not a feature).
  template <typename T>
  std::shared_ptr<const T> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end() || it->second->type != std::type_index(typeid(T))) {
      ++stats_.misses;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return std::static_pointer_cast<const T>(it->second->value);
  }

  // Inserts (or refreshes) `key` at most-recent with the given size
  // estimate, then evicts from least-recent until back under budget —
  // never the entry just inserted.
  template <typename T>
  void Put(const std::string& key, std::shared_ptr<const T> value,
           std::uint64_t bytes) {
    PutErased(key, std::static_pointer_cast<const void>(std::move(value)),
              std::type_index(typeid(T)), bytes);
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::uint64_t budget() const { return budget_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> value;
    std::type_index type;
    std::uint64_t bytes = 0;
  };

  void PutErased(const std::string& key, std::shared_ptr<const void> value,
                 std::type_index type, std::uint64_t bytes);

  const std::uint64_t budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace dcrm::service
