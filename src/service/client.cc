#include "service/client.h"

#include <utility>

namespace dcrm::service {

Client Client::Connect(const std::string& socket_path) {
  return Client(net::ConnectUnix(socket_path));
}

Response Client::Call(const RequestSpec& req) {
  net::WriteFrame(sock_.fd(), EncodeRequest(req));
  std::optional<std::string> frame =
      net::ReadFrame(sock_.fd(), kMaxResponseBytes);
  if (!frame.has_value()) {
    throw net::SocketError("server closed the connection without answering");
  }
  return DecodeResponse(*frame);
}

}  // namespace dcrm::service
