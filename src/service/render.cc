#include "service/render.h"

#include <sstream>

namespace dcrm::service {

std::string RenderTimingCsv(const apps::TimingDetail& d) {
  std::ostringstream os;
  os << "component,cycles,warp_insts_issued,mem_insts,transactions,"
        "replica_transactions,l1_accesses,l1_hits,l1_pending_hits,"
        "l1_misses,l2_accesses,l2_hits,l2_misses,replica_l2_hits,"
        "replica_l2_misses,dram_reads,dram_writes,dram_row_hits,"
        "mshr_stalls,compare_queue_stalls,comparisons\n";
  const auto row = [&os](const std::string& name, const sim::GpuStats& s,
                         std::uint64_t cycles) {
    os << name << ',' << cycles << ',' << s.warp_insts_issued << ','
       << s.mem_insts << ',' << s.transactions << ','
       << s.replica_transactions << ',' << s.l1_accesses << ',' << s.l1_hits
       << ',' << s.l1_pending_hits << ',' << s.l1_misses << ','
       << s.l2_accesses << ',' << s.l2_hits << ',' << s.l2_misses << ','
       << s.replica_l2_hits << ',' << s.replica_l2_misses << ','
       << s.dram_reads << ',' << s.dram_writes << ',' << s.dram_row_hits
       << ',' << s.mshr_stalls << ',' << s.compare_queue_stalls << ','
       << s.comparisons << '\n';
  };
  row("total", d.total, d.total.cycles);
  for (std::size_t i = 0; i < d.per_sm.size(); ++i) {
    row("sm" + std::to_string(i), d.per_sm[i], 0);
  }
  for (std::size_t i = 0; i < d.per_partition.size(); ++i) {
    row("partition" + std::to_string(i), d.per_partition[i], 0);
  }
  return os.str();
}

std::string RenderCampaignSummary(const std::string& app, sim::Scheme scheme,
                                  unsigned cover,
                                  const fault::CampaignConfig& cc,
                                  const fault::CampaignCounts& counts,
                                  unsigned jobs, double sampling_share) {
  std::ostringstream os;
  const auto ci = counts.SdcCi();
  os << app << " scheme=" << sim::SchemeName(scheme) << " cover=" << cover
     << " blocks=" << cc.faulty_blocks << " bits=" << cc.bits_per_block
     << " runs=" << counts.runs << " jobs=" << jobs << "\nSDC " << counts.sdc
     << " (" << 100 * ci.p << "% +/- " << 100 * ci.margin << "%), detected "
     << counts.detected << ", due " << counts.due << ", crash "
     << counts.crash << ", masked " << counts.masked << ", corrections "
     << counts.corrections << "\n";
  if (cc.importance_sampling && counts.runs > 0) {
    // Rates above are conditional on hitting an SDC-reachable block;
    // the unconditional estimate rescales by the reachable share.
    os << "importance sampling: reachable share " << sampling_share
       << ", unconditional SDC estimate " << 100 * sampling_share * ci.p
       << "% +/- " << 100 * sampling_share * ci.margin << "%\n";
  }
  if (cc.recovery.enabled) {
    os << "recovered " << counts.recovered << ", reexec "
       << counts.recovery.retries << ", retired "
       << counts.recovery.retired_blocks << ", escalations "
       << counts.recovery.escalations << "\n";
  }
  return os.str();
}

}  // namespace dcrm::service
