// Client side of the service protocol: one connection, synchronous
// request/response calls (`dcrm request`, tests, the bench's request
// drivers).
#pragma once

#include <string>

#include "common/socket.h"
#include "service/proto.h"

namespace dcrm::service {

class Client {
 public:
  // Throws net::SocketError when nothing listens on `socket_path` —
  // `dcrm request` maps it to exit 11.
  static Client Connect(const std::string& socket_path);

  // Sends one request and blocks for its response. Throws
  // net::SocketError on a dropped connection, ProtoError on an
  // undecodable response.
  Response Call(const RequestSpec& req);

 private:
  explicit Client(net::UnixSocket sock) : sock_(std::move(sock)) {}

  net::UnixSocket sock_;
};

}  // namespace dcrm::service
