// The `dcrm serve` daemon (DESIGN.md §14): a Unix-domain-socket server
// accepting framed JSON requests from many concurrent clients.
//
// Thread model: one accept thread (poll + stop flag), one thread per
// live connection, one executor thread inside the RequestScheduler.
// Connection threads handle the cache fast path themselves
// (ExecContext::TryCached — repeat requests never queue behind running
// campaigns); misses go through Submit and block on the future.
//
// Shutdown (RequestStop from a signal handler's poll loop, or a
// `shutdown` request) is a drain, not an abort: the accept thread
// stops, the scheduler finishes every queued request, in-flight
// responses are written, then the listener closes and the socket file
// is unlinked. Requests that arrive during the drain get an ok=false
// "service is draining" response rather than a hang.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "service/handlers.h"
#include "service/proto.h"
#include "service/scheduler.h"

namespace dcrm::service {

struct ServerOptions {
  std::string socket_path;
  ExecOptions exec;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket and launches the accept thread. Throws
  // net::SocketError on bind failure (`dcrm serve` maps it to exit
  // 10).
  void Start();

  // Signals the drain; safe from any thread. Join() (or the
  // destructor) completes it.
  void RequestStop();
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  // Drains and tears down: joins the accept thread, finishes queued
  // requests, joins connection threads, closes and unlinks the socket.
  // Idempotent.
  void Join();

  const std::string& socket_path() const { return opts_.socket_path; }
  ExecContext& context() { return ctx_; }

 private:
  void AcceptLoop();
  void HandleConnection(net::UnixSocket conn);
  std::string DispatchFrame(const std::string& frame);

  ServerOptions opts_;
  ExecContext ctx_;
  RequestScheduler sched_;
  net::UnixSocket listener_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace dcrm::service
