// Functional device memory: typed reads/writes against the backing
// store with the permanent stuck-at fault map applied on the read path
// and, optionally, a real SECDED(72,64) code on every 64-bit word.
//
// EccMode::kNone is the paper's emulation model (Luo et al. [39]):
// injected faults reach the application unfiltered, standing in for
// multi-bit faults that escape or overwhelm SECDED. EccMode::kSecded
// models the code faithfully and is used by the ECC ablation bench.
#pragma once

#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>

#include "mem/address_space.h"
#include "mem/fault_model.h"
#include "mem/secded.h"

namespace dcrm::mem {

// Quarantine table for faulty-block retirement (the recovery
// subsystem's Tier 1): a retired 128B physical block is remapped to a
// spare block, so accesses — and, crucially, the stuck-at fault map,
// which is keyed by physical address — land on healthy cells. Mirrors
// the row/page-retirement machinery of production HBM/GDDR stacks.
class BlockRemapTable {
 public:
  bool Empty() const { return map_.empty(); }
  std::size_t Size() const { return map_.size(); }
  bool Contains(std::uint64_t block) const { return map_.contains(block); }
  void Map(std::uint64_t from_block, std::uint64_t to_block);
  void Clear() { map_.clear(); }

  // Translates a byte address through the table (identity when the
  // owning block is not retired). Block-granular: offsets within the
  // 128B block are preserved.
  Addr Translate(Addr a) const {
    const auto it = map_.find(a / kBlockSize);
    if (it == map_.end()) return a;
    return it->second * kBlockSize + a % kBlockSize;
  }

  const std::unordered_map<std::uint64_t, std::uint64_t>& Entries() const {
    return map_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

enum class EccMode : std::uint8_t { kNone, kSecded };

// Thrown when SECDED flags an uncorrectable error (detected
// uncorrectable error). A DUE is *not* a silent corruption: the run
// aborts visibly, like the paper's terminate-and-rerun model.
class DueError : public std::runtime_error {
 public:
  explicit DueError(Addr a)
      : std::runtime_error("SECDED detected uncorrectable error"),
        addr_(a) {}
  Addr addr() const { return addr_; }

 private:
  Addr addr_;
};

struct EccCounters {
  std::uint64_t corrected = 0;       // true single-bit corrections
  std::uint64_t miscorrected = 0;    // "corrected" to the wrong value
  std::uint64_t detected_due = 0;    // double/invalid detections
  std::uint64_t escaped = 0;         // faulty word decoded as kOk
};

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_hint = 0)
      : space_(capacity_hint) {}

  AddressSpace& space() { return space_; }
  const AddressSpace& space() const { return space_; }
  FaultMap& faults() { return faults_; }
  const FaultMap& faults() const { return faults_; }

  void set_ecc_mode(EccMode m) { ecc_mode_ = m; }
  EccMode ecc_mode() const { return ecc_mode_; }
  const EccCounters& ecc_counters() const { return ecc_counters_; }
  void ResetEccCounters() { ecc_counters_ = {}; }

  // Typed read with faults (and ECC, if enabled) applied.
  template <typename T>
  T Read(Addr a) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    ReadBytes(a, reinterpret_cast<std::uint8_t*>(&out), sizeof(T));
    return out;
  }

  // Typed write. Permanent stuck-at faults are *not* healed by writes;
  // they re-assert on the next read.
  template <typename T>
  void Write(Addr a, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(a, &v, sizeof(T));
  }

  // Writes bytes through the retirement remap (the data-plane store
  // path): writes to a retired block land in its spare.
  void WriteBytes(Addr a, const void* in, std::uint64_t n);

  // Reads bytes applying faults/ECC. Public so block-granular consumers
  // (replica comparison, metrics) share one code path.
  void ReadBytes(Addr a, std::uint8_t* out, std::uint64_t n) const;

  // Reads the stored (golden) bytes with no fault application. Used by
  // tests and by ECC bookkeeping, never by simulated application code.
  void ReadGolden(Addr a, std::uint8_t* out, std::uint64_t n) const;

  template <typename T>
  T ReadGoldenTyped(Addr a) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    ReadGolden(a, reinterpret_cast<std::uint8_t*>(&out), sizeof(T));
    return out;
  }

  // Retirement table (Tier-1 recovery). Reads, writes and the fault
  // map all see addresses through this remap.
  BlockRemapTable& retired() { return retired_; }
  const BlockRemapTable& retired() const { return retired_; }

  // Physical address after retirement remapping (identity when the
  // block is healthy).
  Addr Translate(Addr a) const {
    return retired_.Empty() ? a : retired_.Translate(a);
  }

  // Out-of-band maintenance probe: decodes the SECDED words covering
  // [a, a+n) exactly as the ECC pipeline would and reports the worst
  // status, without throwing or touching the ECC counters. The
  // recovery subsystem uses it to arbitrate which copy of a
  // mismatching duplicated value sits on bad cells; it works in any
  // EccMode (a scrub engine can always recompute the code).
  EccStatus SecdedProbe(Addr a, std::uint64_t n) const;

 private:
  void CheckRange(Addr a, std::uint64_t n) const {
    if (!space_.ValidRange(a, n)) {
      throw std::out_of_range("device memory access out of range");
    }
  }
  // Reads bytes at a physical (already remapped) address.
  void ReadBytesPhys(Addr a, std::uint8_t* out, std::uint64_t n) const;
  // Reads one 8-byte-aligned word through the SECDED model. DueError
  // carries the word's physical address; for a healthy (non-retired)
  // block this equals the logical address handlers retire.
  std::uint64_t ReadWordSecded(Addr word_base) const;

  AddressSpace space_;
  FaultMap faults_;
  BlockRemapTable retired_;
  EccMode ecc_mode_ = EccMode::kNone;
  mutable EccCounters ecc_counters_;
};

}  // namespace dcrm::mem
