#include "mem/address_space.h"

#include <stdexcept>

namespace dcrm::mem {

AddressSpace::AddressSpace(std::uint64_t capacity_hint) {
  if (capacity_hint > 0) store_.reserve(capacity_hint);
}

void AddressSpace::EnsureCapacity(std::uint64_t bytes) {
  if (store_.size() < bytes) store_.resize(bytes);
}

ObjectId AddressSpace::Allocate(std::string_view name,
                                std::uint64_t size_bytes, bool read_only) {
  if (size_bytes == 0) throw std::invalid_argument("zero-sized data object");
  if (FindByName(name)) {
    throw std::invalid_argument("duplicate data object name: " +
                                std::string(name));
  }
  const Addr base = AllocateRaw(size_bytes);
  DataObject obj;
  obj.id = static_cast<ObjectId>(objects_.size());
  obj.name = std::string(name);
  obj.base = base;
  obj.size_bytes = size_bytes;
  obj.read_only = read_only;
  total_object_bytes_ += size_bytes;
  objects_.push_back(std::move(obj));
  return objects_.back().id;
}

Addr AddressSpace::AllocateRaw(std::uint64_t size_bytes) {
  const Addr base = brk_;
  // Round the next break up to a block boundary so regions never share
  // a 128B block.
  const std::uint64_t padded =
      (size_bytes + kBlockSize - 1) / kBlockSize * kBlockSize;
  brk_ += padded;
  EnsureCapacity(brk_);
  return base;
}

std::optional<ObjectId> AddressSpace::FindByName(std::string_view name) const {
  for (const auto& o : objects_) {
    if (o.name == name) return o.id;
  }
  return std::nullopt;
}

std::optional<ObjectId> AddressSpace::OwnerOf(Addr a) const {
  for (const auto& o : objects_) {
    if (o.Contains(a)) return o.id;
  }
  return std::nullopt;
}

std::uint64_t AddressSpace::TotalObjectBlocks() const {
  std::uint64_t n = 0;
  for (const auto& o : objects_) n += o.NumBlocks();
  return n;
}

}  // namespace dcrm::mem
