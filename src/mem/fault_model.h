// Permanent stuck-at fault model, following the paper's emulation of
// Luo et al. [39]: faults are attached to bit positions of byte
// addresses in the application address space, irrespective of cache /
// DRAM mapping. A stuck bit reads as its stuck value on every access;
// writes do not heal it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dcrm::mem {

struct StuckAtFault {
  Addr byte_addr = 0;
  std::uint8_t bit = 0;  // 0..7 within the byte
  bool stuck_value = false;

  friend bool operator==(const StuckAtFault&, const StuckAtFault&) = default;
};

// Aggregated per-byte stuck masks for fast application on the read path.
struct ByteFault {
  std::uint8_t stuck1_mask = 0;  // bits forced to 1
  std::uint8_t stuck0_mask = 0;  // bits forced to 0
};

class FaultMap {
 public:
  void Add(const StuckAtFault& f);
  void Clear();
  bool Empty() const { return by_byte_.empty(); }
  std::size_t NumFaults() const { return faults_.size(); }
  const std::vector<StuckAtFault>& Faults() const { return faults_; }

  // Applies every stuck-at fault overlapping [a, a+n) to `bytes`.
  void Apply(Addr a, std::uint8_t* bytes, std::uint64_t n) const;

  std::uint8_t ApplyByte(Addr a, std::uint8_t v) const;

  bool BlockHasFaults(std::uint64_t block) const {
    return faulty_blocks_.contains(block);
  }
  const std::unordered_set<std::uint64_t>& FaultyBlocks() const {
    return faulty_blocks_;
  }

 private:
  std::vector<StuckAtFault> faults_;
  std::unordered_map<Addr, ByteFault> by_byte_;
  std::unordered_set<std::uint64_t> faulty_blocks_;
};

// The paper's injection recipe for one memory block: pick a random
// 4-byte word within the 128B block, then `num_bits` distinct random
// bit positions within that word, each stuck at 0 or 1 with equal
// probability.
std::vector<StuckAtFault> MakeWordFaults(Addr block_base, unsigned num_bits,
                                         Rng& rng);

// As above, but the word is drawn from [lo, hi) — the bytes of the
// block that actually belong to the application address space. Small
// data objects (a 36B filter, a 4B width) occupy only the head of
// their 128B block; the allocator padding past `hi` is not
// application data and is never a fault target.
std::vector<StuckAtFault> MakeWordFaultsInRange(Addr lo, Addr hi,
                                                unsigned num_bits, Rng& rng);

}  // namespace dcrm::mem
