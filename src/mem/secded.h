// A real (72,64) SECDED Hamming codec.
//
// The paper assumes SECDED is already deployed on caches/DRAM and that
// the multi-bit faults it studies escape or overwhelm it. This module
// implements the actual code so that (a) the assumption can be tested
// (ablation bench `bench_ablation_secded`) and (b) the simulator can
// model the realistic per-word behaviour: 1-bit corrected, 2-bit
// detected, 3-bit usually *miscorrected* (silent corruption!), 4-bit
// either detected-as-double or, rarely, escaping undetected.
//
// Layout: 72-bit codeword. Position 0 is the overall parity bit;
// positions 1..71 form a Hamming(71,64) code with check bits at the
// power-of-two positions {1,2,4,8,16,32,64} and the 64 data bits at
// the remaining positions in increasing order.
#pragma once

#include <cstdint>

namespace dcrm::mem {

enum class EccStatus : std::uint8_t {
  kOk,               // no error detected
  kCorrectedSingle,  // single-bit error corrected (data or check bit)
  kDetectedDouble,   // uncorrectable double error detected (DUE)
  kDetectedInvalid,  // syndrome points outside the codeword (DUE)
};

struct EccWord {
  std::uint64_t data = 0;
  std::uint8_t check = 0;  // 7 Hamming bits (bits 0..6) + overall (bit 7)
};

struct EccDecodeResult {
  std::uint64_t data = 0;
  EccStatus status = EccStatus::kOk;
};

class Secded72 {
 public:
  // Encodes 64 data bits into data + 8 check bits.
  static EccWord Encode(std::uint64_t data);

  // Decodes a possibly-corrupted word. Note that with >=3 raw bit
  // errors the result may be *miscorrected*: status reads
  // kCorrectedSingle but `data` differs from the original. That is
  // faithful SECDED behaviour, not a bug.
  static EccDecodeResult Decode(const EccWord& w);

  // Maps data-bit index (0..63) to codeword position (1..71). Exposed
  // for tests and for injecting faults at codeword granularity.
  static unsigned DataBitPosition(unsigned data_bit);

 private:
  static std::uint8_t HammingChecks(std::uint64_t codeword_lo,
                                    std::uint8_t codeword_hi);
};

}  // namespace dcrm::mem
