// Device address space: a flat byte-addressable memory with a bump
// allocator and a registry of named data objects (the paper's unit of
// protection).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace dcrm::mem {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kInvalidObject = ~ObjectId{0};

// A named allocation in device memory. Mirrors the paper's "input data
// object" (e.g. Layer1_Weights, r, Filter).
struct DataObject {
  ObjectId id = kInvalidObject;
  std::string name;
  Addr base = 0;
  std::uint64_t size_bytes = 0;
  bool read_only = false;

  Addr end() const { return base + size_bytes; }
  bool Contains(Addr a) const { return a >= base && a < end(); }
  std::uint64_t NumBlocks() const {
    return (size_bytes + kBlockSize - 1) / kBlockSize;
  }
};

class AddressSpace {
 public:
  // `capacity_hint` pre-reserves backing storage.
  explicit AddressSpace(std::uint64_t capacity_hint = 0);

  // Allocates `size_bytes` aligned to the 128B block size and registers
  // it under `name`. Objects never alias and never share a block, which
  // matches the paper's block-granular treatment of objects.
  ObjectId Allocate(std::string_view name, std::uint64_t size_bytes,
                    bool read_only);

  // Allocates an anonymous region (used for replicas); not listed among
  // application data objects.
  Addr AllocateRaw(std::uint64_t size_bytes);

  const DataObject& Object(ObjectId id) const { return objects_.at(id); }
  std::span<const DataObject> Objects() const { return objects_; }
  std::optional<ObjectId> FindByName(std::string_view name) const;
  // Object owning address `a`, if any (replica space returns nullopt).
  std::optional<ObjectId> OwnerOf(Addr a) const;

  // Total bytes allocated to *named* data objects (the paper's "total
  // application memory" denominator in Table III).
  std::uint64_t TotalObjectBytes() const { return total_object_bytes_; }
  std::uint64_t TotalObjectBlocks() const;

  Addr Brk() const { return brk_; }

  // Raw backing storage access (the functional data plane).
  std::byte* Data() { return store_.data(); }
  const std::byte* Data() const { return store_.data(); }
  std::uint64_t StoreSize() const { return store_.size(); }

  bool ValidRange(Addr a, std::uint64_t n) const {
    return a + n <= store_.size() && a + n >= a;
  }

 private:
  void EnsureCapacity(std::uint64_t bytes);

  std::vector<std::byte> store_;
  std::vector<DataObject> objects_;
  Addr brk_ = 0;
  std::uint64_t total_object_bytes_ = 0;
};

}  // namespace dcrm::mem
