#include "mem/secded.h"

#include <array>

#include "common/bitops.h"

namespace dcrm::mem {
namespace {

constexpr bool IsPow2(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }

// Codeword positions 1..71 that carry data bits, in increasing order.
constexpr std::array<std::uint8_t, 64> MakeDataPositions() {
  std::array<std::uint8_t, 64> pos{};
  unsigned idx = 0;
  for (unsigned p = 1; p <= 71 && idx < 64; ++p) {
    if (!IsPow2(p)) pos[idx++] = static_cast<std::uint8_t>(p);
  }
  return pos;
}

constexpr std::array<std::uint8_t, 64> kDataPos = MakeDataPositions();

// 72-bit codeword held as lo 64 bits (positions 0..63) and hi 8 bits
// (positions 64..71).
struct Codeword {
  std::uint64_t lo = 0;
  std::uint8_t hi = 0;

  bool Get(unsigned p) const {
    return p < 64 ? TestBit(lo, p) : TestBit(hi, p - 64);
  }
  void Set(unsigned p, bool v) {
    if (p < 64) {
      lo = v ? SetBit(lo, p) : ClearBit(lo, p);
    } else {
      hi = static_cast<std::uint8_t>(
          v ? SetBit(hi, p - 64) : ClearBit(hi, p - 64));
    }
  }
  void Flip(unsigned p) { Set(p, !Get(p)); }
};

Codeword Assemble(const EccWord& w) {
  Codeword cw;
  // Overall parity at position 0.
  cw.Set(0, TestBit(w.check, 7));
  // Hamming check bits at power-of-two positions.
  for (unsigned j = 0; j < 7; ++j) cw.Set(1u << j, TestBit(w.check, j));
  // Data bits.
  for (unsigned i = 0; i < 64; ++i) cw.Set(kDataPos[i], TestBit(w.data, i));
  return cw;
}

std::uint64_t ExtractData(const Codeword& cw) {
  std::uint64_t d = 0;
  for (unsigned i = 0; i < 64; ++i) {
    if (cw.Get(kDataPos[i])) d = SetBit(d, i);
  }
  return d;
}

unsigned Syndrome(const Codeword& cw) {
  unsigned s = 0;
  for (unsigned p = 1; p <= 71; ++p) {
    if (cw.Get(p)) s ^= p;
  }
  return s;
}

unsigned OverallParity(const Codeword& cw) {
  unsigned p = 0;
  for (unsigned i = 0; i <= 71; ++i) p ^= cw.Get(i) ? 1u : 0u;
  return p;
}

}  // namespace

unsigned Secded72::DataBitPosition(unsigned data_bit) {
  return kDataPos[data_bit];
}

EccWord Secded72::Encode(std::uint64_t data) {
  Codeword cw;
  for (unsigned i = 0; i < 64; ++i) cw.Set(kDataPos[i], TestBit(data, i));
  // Each Hamming check bit makes the parity over its coverage class
  // even. Coverage class of check bit j: positions with bit j set.
  for (unsigned j = 0; j < 7; ++j) {
    unsigned parity = 0;
    for (unsigned p = 1; p <= 71; ++p) {
      if ((p >> j) & 1u) parity ^= cw.Get(p) ? 1u : 0u;
    }
    cw.Set(1u << j, parity != 0);
  }
  // Overall parity over positions 0..71 made even.
  cw.Set(0, false);
  cw.Set(0, OverallParity(cw) != 0);

  EccWord out;
  out.data = data;
  std::uint8_t check = 0;
  for (unsigned j = 0; j < 7; ++j) {
    if (cw.Get(1u << j)) check = static_cast<std::uint8_t>(SetBit(check, j));
  }
  if (cw.Get(0)) check = static_cast<std::uint8_t>(SetBit(check, 7));
  out.check = check;
  return out;
}

EccDecodeResult Secded72::Decode(const EccWord& w) {
  Codeword cw = Assemble(w);
  const unsigned syndrome = Syndrome(cw);
  const unsigned parity = OverallParity(cw);

  EccDecodeResult r;
  if (syndrome == 0 && parity == 0) {
    r.data = ExtractData(cw);
    r.status = EccStatus::kOk;
    return r;
  }
  if (syndrome == 0 && parity == 1) {
    // Overall parity bit itself flipped; data intact.
    r.data = ExtractData(cw);
    r.status = EccStatus::kCorrectedSingle;
    return r;
  }
  if (parity == 1) {
    // Odd number of raw errors; syndrome names the (apparent) position.
    if (syndrome <= 71) {
      cw.Flip(syndrome);
      r.data = ExtractData(cw);
      r.status = EccStatus::kCorrectedSingle;  // may be a miscorrection
      return r;
    }
    r.data = ExtractData(cw);
    r.status = EccStatus::kDetectedInvalid;
    return r;
  }
  // parity == 0 && syndrome != 0: even number (>=2) of errors.
  r.data = ExtractData(cw);
  r.status = EccStatus::kDetectedDouble;
  return r;
}

}  // namespace dcrm::mem
