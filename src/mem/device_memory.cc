#include "mem/device_memory.h"

namespace dcrm::mem {

void DeviceMemory::ReadGolden(Addr a, std::uint8_t* out,
                              std::uint64_t n) const {
  CheckRange(a, n);
  std::memcpy(out, space_.Data() + a, n);
}

std::uint64_t DeviceMemory::ReadWordSecded(Addr word_base) const {
  std::uint64_t golden;
  std::memcpy(&golden, space_.Data() + word_base, 8);
  std::uint64_t faulty = golden;
  faults_.Apply(word_base, reinterpret_cast<std::uint8_t*>(&faulty), 8);
  if (faulty == golden) return golden;

  // The stored check bits were computed when the (golden) data was
  // written; the raw faults corrupt data bits only (the paper injects
  // into application data words).
  EccWord w;
  w.data = faulty;
  w.check = Secded72::Encode(golden).check;
  const EccDecodeResult r = Secded72::Decode(w);
  switch (r.status) {
    case EccStatus::kOk:
      ++ecc_counters_.escaped;
      return r.data;
    case EccStatus::kCorrectedSingle:
      if (r.data == golden) {
        ++ecc_counters_.corrected;
      } else {
        ++ecc_counters_.miscorrected;
      }
      return r.data;
    case EccStatus::kDetectedDouble:
    case EccStatus::kDetectedInvalid:
      ++ecc_counters_.detected_due;
      throw DueError(word_base);
  }
  return r.data;  // unreachable
}

void DeviceMemory::ReadBytes(Addr a, std::uint8_t* out,
                             std::uint64_t n) const {
  CheckRange(a, n);
  if (ecc_mode_ == EccMode::kNone || faults_.Empty()) {
    std::memcpy(out, space_.Data() + a, n);
    faults_.Apply(a, out, n);
    return;
  }
  // SECDED path: process the covering 8-byte-aligned words.
  std::uint64_t i = 0;
  while (i < n) {
    const Addr cur = a + i;
    const Addr word_base = cur & ~Addr{7};
    const std::uint64_t word = ReadWordSecded(word_base);
    const std::uint64_t off = cur - word_base;
    const std::uint64_t take = std::min<std::uint64_t>(8 - off, n - i);
    std::memcpy(out + i, reinterpret_cast<const std::uint8_t*>(&word) + off,
                take);
    i += take;
  }
}

}  // namespace dcrm::mem
