#include "mem/device_memory.h"

#include <algorithm>

namespace dcrm::mem {

void BlockRemapTable::Map(std::uint64_t from_block, std::uint64_t to_block) {
  if (from_block == to_block) {
    throw std::invalid_argument("cannot remap a block onto itself");
  }
  if (!map_.emplace(from_block, to_block).second) {
    throw std::invalid_argument("block is already retired");
  }
}

void DeviceMemory::ReadGolden(Addr a, std::uint8_t* out,
                              std::uint64_t n) const {
  CheckRange(a, n);
  std::memcpy(out, space_.Data() + a, n);
}

std::uint64_t DeviceMemory::ReadWordSecded(Addr word_base) const {
  std::uint64_t golden;
  std::memcpy(&golden, space_.Data() + word_base, 8);
  std::uint64_t faulty = golden;
  faults_.Apply(word_base, reinterpret_cast<std::uint8_t*>(&faulty), 8);
  if (faulty == golden) return golden;

  // The stored check bits were computed when the (golden) data was
  // written; the raw faults corrupt data bits only (the paper injects
  // into application data words).
  EccWord w;
  w.data = faulty;
  w.check = Secded72::Encode(golden).check;
  const EccDecodeResult r = Secded72::Decode(w);
  switch (r.status) {
    case EccStatus::kOk:
      ++ecc_counters_.escaped;
      return r.data;
    case EccStatus::kCorrectedSingle:
      if (r.data == golden) {
        ++ecc_counters_.corrected;
      } else {
        ++ecc_counters_.miscorrected;
      }
      return r.data;
    case EccStatus::kDetectedDouble:
    case EccStatus::kDetectedInvalid:
      ++ecc_counters_.detected_due;
      throw DueError(word_base);
  }
  return r.data;  // unreachable
}

void DeviceMemory::ReadBytesPhys(Addr a, std::uint8_t* out,
                                 std::uint64_t n) const {
  if (ecc_mode_ == EccMode::kNone || faults_.Empty()) {
    std::memcpy(out, space_.Data() + a, n);
    faults_.Apply(a, out, n);
    return;
  }
  // SECDED path: process the covering 8-byte-aligned words. Retirement
  // remaps whole 128B blocks, so 8-byte alignment survives translation
  // and the physical word base addresses the logical word's cells.
  std::uint64_t i = 0;
  while (i < n) {
    const Addr cur = a + i;
    const Addr word_base = cur & ~Addr{7};
    const std::uint64_t word = ReadWordSecded(word_base);
    const std::uint64_t off = cur - word_base;
    const std::uint64_t take = std::min<std::uint64_t>(8 - off, n - i);
    std::memcpy(out + i, reinterpret_cast<const std::uint8_t*>(&word) + off,
                take);
    i += take;
  }
}

void DeviceMemory::ReadBytes(Addr a, std::uint8_t* out,
                             std::uint64_t n) const {
  CheckRange(a, n);
  if (retired_.Empty()) {
    ReadBytesPhys(a, out, n);
    return;
  }
  // Translate block-granular segments through the retirement table.
  std::uint64_t i = 0;
  while (i < n) {
    const Addr cur = a + i;
    const std::uint64_t take = std::min<std::uint64_t>(
        n - i, (cur / kBlockSize + 1) * kBlockSize - cur);
    ReadBytesPhys(retired_.Translate(cur), out + i, take);
    i += take;
  }
}

void DeviceMemory::WriteBytes(Addr a, const void* in, std::uint64_t n) {
  CheckRange(a, n);
  const auto* src = static_cast<const std::uint8_t*>(in);
  if (retired_.Empty()) {
    std::memcpy(space_.Data() + a, src, n);
    return;
  }
  std::uint64_t i = 0;
  while (i < n) {
    const Addr cur = a + i;
    const std::uint64_t take = std::min<std::uint64_t>(
        n - i, (cur / kBlockSize + 1) * kBlockSize - cur);
    std::memcpy(space_.Data() + retired_.Translate(cur), src + i, take);
    i += take;
  }
}

EccStatus DeviceMemory::SecdedProbe(Addr a, std::uint64_t n) const {
  CheckRange(a, n);
  EccStatus worst = EccStatus::kOk;
  auto rank = [](EccStatus s) {
    switch (s) {
      case EccStatus::kOk:
        return 0;
      case EccStatus::kCorrectedSingle:
        return 1;
      case EccStatus::kDetectedDouble:
      case EccStatus::kDetectedInvalid:
        return 2;
    }
    return 2;
  };
  const Addr first = a & ~Addr{7};
  for (Addr word_base = first; word_base < a + n; word_base += 8) {
    const Addr phys = Translate(word_base);
    std::uint64_t golden;
    std::memcpy(&golden, space_.Data() + phys, 8);
    std::uint64_t faulty = golden;
    faults_.Apply(phys, reinterpret_cast<std::uint8_t*>(&faulty), 8);
    if (faulty == golden) continue;
    EccWord w;
    w.data = faulty;
    w.check = Secded72::Encode(golden).check;
    const EccStatus s = Secded72::Decode(w).status;
    if (rank(s) > rank(worst)) worst = s;
  }
  return worst;
}

}  // namespace dcrm::mem
