#include "mem/fault_model.h"

#include <algorithm>
#include <stdexcept>

namespace dcrm::mem {

void FaultMap::Add(const StuckAtFault& f) {
  if (f.bit > 7) throw std::invalid_argument("bit index out of range");
  faults_.push_back(f);
  auto& bf = by_byte_[f.byte_addr];
  const std::uint8_t m = static_cast<std::uint8_t>(1u << f.bit);
  if (f.stuck_value) {
    bf.stuck1_mask |= m;
    bf.stuck0_mask &= static_cast<std::uint8_t>(~m);
  } else {
    bf.stuck0_mask |= m;
    bf.stuck1_mask &= static_cast<std::uint8_t>(~m);
  }
  faulty_blocks_.insert(BlockOf(f.byte_addr));
}

void FaultMap::Clear() {
  faults_.clear();
  by_byte_.clear();
  faulty_blocks_.clear();
}

std::uint8_t FaultMap::ApplyByte(Addr a, std::uint8_t v) const {
  const auto it = by_byte_.find(a);
  if (it == by_byte_.end()) return v;
  const ByteFault& bf = it->second;
  return static_cast<std::uint8_t>((v | bf.stuck1_mask) &
                                   ~bf.stuck0_mask);
}

void FaultMap::Apply(Addr a, std::uint8_t* bytes, std::uint64_t n) const {
  if (by_byte_.empty()) return;
  // Fast path: skip scans for accesses entirely within fault-free
  // blocks (the overwhelmingly common case in a campaign run).
  const std::uint64_t first_block = BlockOf(a);
  const std::uint64_t last_block = BlockOf(a + n - 1);
  bool any = false;
  for (std::uint64_t b = first_block; b <= last_block; ++b) {
    if (faulty_blocks_.contains(b)) {
      any = true;
      break;
    }
  }
  if (!any) return;
  for (std::uint64_t i = 0; i < n; ++i) {
    bytes[i] = ApplyByte(a + i, bytes[i]);
  }
}

std::vector<StuckAtFault> MakeWordFaults(Addr block_base, unsigned num_bits,
                                         Rng& rng) {
  return MakeWordFaultsInRange(block_base, block_base + kBlockSize, num_bits,
                               rng);
}

std::vector<StuckAtFault> MakeWordFaultsInRange(Addr lo, Addr hi,
                                                unsigned num_bits, Rng& rng) {
  if (num_bits == 0 || num_bits > 32) {
    throw std::invalid_argument("num_bits must be in [1, 32]");
  }
  if (hi <= lo) throw std::invalid_argument("empty fault range");
  // Random aligned 4-byte word overlapping [lo, hi).
  const Addr first_word = lo / 4;
  const Addr last_word = (hi - 1) / 4;  // inclusive
  const Addr word_base =
      (first_word + rng.Below(last_word - first_word + 1)) * 4;
  // Distinct random bit positions within the 32-bit word.
  std::vector<unsigned> positions;
  positions.reserve(num_bits);
  while (positions.size() < num_bits) {
    const auto p = static_cast<unsigned>(rng.Below(32));
    if (std::find(positions.begin(), positions.end(), p) == positions.end()) {
      positions.push_back(p);
    }
  }
  std::vector<StuckAtFault> out;
  out.reserve(num_bits);
  for (unsigned p : positions) {
    StuckAtFault f;
    f.byte_addr = word_base + p / 8;
    f.bit = static_cast<std::uint8_t>(p % 8);
    f.stuck_value = rng.Bernoulli(0.5);
    out.push_back(f);
  }
  return out;
}

}  // namespace dcrm::mem
