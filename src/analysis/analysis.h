// Static trace analyzer: certifies a protection configuration against
// the recorded access streams *before* any timing simulation or fault
// campaign runs — the simulator's analogue of compute-sanitizer's
// racecheck, aimed at the silent-misconfiguration failure mode.
//
// The paper's schemes are sound only under invariants nothing enforced
// until now:
//  - protected objects must be read-only within protected kernels
//    (lazy compare is unsound under writes: the primary is updated,
//    the replica is stale, and the deferred comparison misfires);
//  - replicas must live at fresh addresses that alias neither live
//    objects nor the spare/remap region Tier-1 retirement writes to;
//  - the LD/ST-unit tables (32-entry protected-PC store, 32/16-entry
//    replica start-address store) must not overflow.
//
// Every check consumes only static inputs — the coalesced per-warp
// access streams (trace::TraceStore), the address-space object map,
// and the protection plan — and emits machine-readable findings with
// per-finding severity. Violations mean the configuration will produce
// garbage results; warnings mean it leaves the paper's soundness
// argument; infos are diagnostics (e.g. coalescing quality).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/hot_classifier.h"
#include "mem/address_space.h"
#include "sim/config.h"
#include "sim/replication.h"
#include "trace/trace_store.h"

namespace dcrm::analysis {

enum class Severity : std::uint8_t { kInfo, kWarning, kViolation };

enum class Check : std::uint8_t {
  kInterWarpRace,  // write/read or write/write block sharing across warps
  kReadOnly,       // protected range is stored to by a protected kernel
  kReplicaLayout,  // replica aliases an object, a range, or the spare pool
  kCapacity,       // LD/ST-unit table overflow (PC / replica-address)
  kCoalescing,     // poorly coalesced protected loads (diagnostic)
  kHotClaim,       // hot classifier's read-only claim contradicts traces
  kVulnerability,  // ACE liveness / AVF findings (analysis/vulnerability.h)
};

const char* SeverityName(Severity s);
const char* CheckName(Check c);

struct Finding {
  Check check = Check::kInterWarpRace;
  Severity severity = Severity::kInfo;
  std::string subject;       // data object / kernel the finding is about
  Addr addr = 0;             // representative address (block base)
  std::uint64_t count = 0;   // blocks / entries / stores involved
  std::string detail;
};

// CLI exit codes (distinct from the tool's 1/2 and the reliability
// outcomes 3/4): clean configurations exit 0.
inline constexpr int kExitClean = 0;
inline constexpr int kExitWarnings = 5;
inline constexpr int kExitViolations = 6;

struct Report {
  std::vector<Finding> findings;

  std::size_t Count(Severity s) const;
  Severity Worst() const;
  // Clean = certifiable: no warnings and no violations (infos allowed).
  bool Clean() const { return Count(Severity::kWarning) == 0 &&
                              Count(Severity::kViolation) == 0; }
  int ExitCode() const;
  void Append(std::vector<Finding> more);
};

// The spare block pool RecoveryManager remaps retired blocks into.
struct SpareRegion {
  Addr base = 0;
  std::uint64_t size = 0;
};

struct AnalyzerInput {
  const trace::TraceStore* traces = nullptr;
  const mem::AddressSpace* space = nullptr;
  const sim::ProtectionPlan* plan = nullptr;
  sim::GpuConfig cfg;
  std::optional<SpareRegion> spare;
};

// Individual checks (exposed for unit testing; Analyze runs them all).

// Inter-warp races: a 128B block written by one warp and read or
// written by a different warp of the same kernel (no intervening
// kernel boundary orders them). On a protected block this is where
// lazy-compare detection would misfire — a violation unless the plan
// propagates stores; on unprotected data it is an informational
// sharing diagnostic (reductions do this by design).
std::vector<Finding> CheckInterWarpRaces(
    const trace::TraceStore& traces, const mem::AddressSpace& space,
    const sim::ProtectionPlan& plan);

// Read-only certification: proves no store of any kernel lands in a
// protected range. A covered-but-stored-to object is always a
// violation of the paper's scheme; the detail records whether the
// store-propagation extension mitigates it.
std::vector<Finding> CertifyReadOnly(
    const trace::TraceStore& traces, const mem::AddressSpace& space,
    const sim::ProtectionPlan& plan);

// Replica layout: every replica range must stay inside the backing
// store and overlap neither named objects, protected primaries, other
// replicas, nor the retirement spare pool.
std::vector<Finding> CheckReplicaLayout(const mem::AddressSpace& space,
                                        const sim::ProtectionPlan& plan,
                                        std::optional<SpareRegion> spare);

// Hardware-capacity lint: protected ranges vs. the 128B start-address
// table (32 one-replica / 16 two-replica entries), tracked PCs vs. the
// 32-entry PC table, plus a coalescing-quality diagnostic for the
// protected (hot) objects — poorly coalesced hot loads multiply
// replication traffic by the transaction fan-out.
std::vector<Finding> LintCapacity(
    const trace::TraceStore& traces, const mem::AddressSpace& space,
    const sim::ProtectionPlan& plan, const sim::GpuConfig& cfg);

// Cross-check: every object the hot classifier marks read-only (the
// Table III coverage order feeding MakeProtectionSetup) must indeed
// never be stored to in the traces. Disagreement means the protection
// planner would certify an unsound cover.
std::vector<Finding> CrossCheckHotClaims(
    const trace::TraceStore& traces, const mem::AddressSpace& space,
    const core::HotClassification& hot);

// Runs race, read-only, layout and capacity checks.
Report Analyze(const AnalyzerInput& in);

// Report writers: human-readable text and machine-readable CSV
// (header: check,severity,subject,addr,count,detail).
void WriteText(const Report& report, std::ostream& os);
void WriteCsv(const Report& report, std::ostream& os);

// Thrown by the campaign-launch gate when a plan has blocking
// violations and the caller did not pass allow_unsound.
class UnsoundPlanError : public std::runtime_error {
 public:
  UnsoundPlanError(std::string what, Report report)
      : std::runtime_error(std::move(what)), report_(std::move(report)) {}
  const Report& report() const { return report_; }

 private:
  Report report_;
};

// Campaign-gate policy: violations block a launch except those the
// store-propagation extension soundly mitigates (read-only and race
// findings on a plan that mirrors stores into the replicas and reads
// outputs through the voting plane).
std::vector<const Finding*> BlockingFindings(const Report& report,
                                             const sim::ProtectionPlan& plan);

}  // namespace dcrm::analysis
