#include "analysis/analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace dcrm::analysis {

namespace {

bool Overlaps(Addr a, std::uint64_t an, Addr b, std::uint64_t bn) {
  return an > 0 && bn > 0 && a < b + bn && b < a + an;
}

std::string NameAt(const mem::AddressSpace& space, Addr a) {
  if (const auto id = space.OwnerOf(a)) return space.Object(*id).name;
  std::ostringstream os;
  os << "<unnamed 0x" << std::hex << a << ">";
  return os.str();
}

std::string KernelLabel(const trace::KernelView& kv) {
  if (!kv.name().empty()) return kv.name();
  std::ostringstream os;
  os << "kernel#" << kv.index();
  return os.str();
}

// Per-block sharing summary, compact enough to scale to full traces:
// one distinct writer/reader each plus "more than one" flags decide
// every race case without storing full warp sets.
struct BlockSharing {
  WarpId writer = 0;
  WarpId reader = 0;
  bool has_writer = false;
  bool has_reader = false;
  bool multi_writer = false;
  bool multi_reader = false;

  bool Raced() const {
    if (multi_writer) return true;  // write/write
    if (!has_writer || !has_reader) return false;
    return multi_reader || reader != writer;  // write/read across warps
  }
};

// Average transactions per warp-level load instruction touching a
// protected range above which the coalescing diagnostic fires. A
// perfectly coalesced unit-stride load needs 1 transaction; the
// paper's uncoalesced counterexamples (column-major matrix walks) fan
// out to 32.
constexpr double kCoalesceInfoThreshold = 4.0;

}  // namespace

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kViolation:
      return "violation";
  }
  return "?";
}

const char* CheckName(Check c) {
  switch (c) {
    case Check::kInterWarpRace:
      return "inter-warp-race";
    case Check::kReadOnly:
      return "read-only";
    case Check::kReplicaLayout:
      return "replica-layout";
    case Check::kCapacity:
      return "capacity";
    case Check::kCoalescing:
      return "coalescing";
    case Check::kHotClaim:
      return "hot-claim";
    case Check::kVulnerability:
      return "vulnerability";
  }
  return "?";
}

std::size_t Report::Count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [s](const Finding& f) { return f.severity == s; }));
}

Severity Report::Worst() const {
  Severity w = Severity::kInfo;
  for (const auto& f : findings) w = std::max(w, f.severity);
  return w;
}

int Report::ExitCode() const {
  if (Count(Severity::kViolation) > 0) return kExitViolations;
  if (Count(Severity::kWarning) > 0) return kExitWarnings;
  return kExitClean;
}

void Report::Append(std::vector<Finding> more) {
  findings.insert(findings.end(), std::make_move_iterator(more.begin()),
                  std::make_move_iterator(more.end()));
}

std::vector<Finding> CheckInterWarpRaces(
    const trace::TraceStore& traces, const mem::AddressSpace& space,
    const sim::ProtectionPlan& plan) {
  std::vector<Finding> out;
  for (std::uint32_t k = 0; k < traces.NumKernels(); ++k) {
    const trace::KernelView kt = traces.Kernel(k);
    // Kernel boundaries order all accesses, so sharing is tracked per
    // kernel and the maps reset between launches.
    std::unordered_map<Addr, BlockSharing> blocks;
    for (std::uint32_t w = 0; w < kt.NumWarps(); ++w) {
      const trace::WarpSlice wt = kt.Warp(w);
      for (std::uint32_t i = 0; i < wt.NumInsts(); ++i) {
        const trace::InstView inst = wt.Inst(i);
        for (const Addr b : inst.blocks) {
          BlockSharing& s = blocks[b];
          if (inst.type == AccessType::kStore) {
            if (!s.has_writer) {
              s.has_writer = true;
              s.writer = wt.warp();
            } else if (s.writer != wt.warp()) {
              s.multi_writer = true;
            }
          } else {
            if (!s.has_reader) {
              s.has_reader = true;
              s.reader = wt.warp();
            } else if (s.reader != wt.warp()) {
              s.multi_reader = true;
            }
          }
        }
      }
    }
    // Aggregate raced blocks per (object, protected) so reports stay
    // one line per subject instead of one per block.
    struct Group {
      std::uint64_t blocks = 0;
      Addr first = ~Addr{0};
    };
    std::map<std::pair<std::string, bool>, Group> groups;
    for (const auto& [addr, s] : blocks) {
      if (!s.Raced()) continue;
      const bool covered = plan.Lookup(addr) != nullptr;
      Group& g = groups[{NameAt(space, addr), covered}];
      g.first = std::min(g.first, addr);
      ++g.blocks;
    }
    for (const auto& [key, g] : groups) {
      const bool covered = key.second;
      Finding f;
      f.check = Check::kInterWarpRace;
      f.subject = key.first;
      f.addr = g.first;
      f.count = g.blocks;
      std::ostringstream d;
      d << KernelLabel(kt) << ": " << g.blocks
        << " 128B block(s) written by one warp and touched by another "
           "with no intervening kernel boundary";
      if (covered) {
        f.severity = plan.propagate_stores ? Severity::kWarning
                                           : Severity::kViolation;
        d << "; block is protected — lazy-compare detection would "
             "misfire on the stale replica";
        if (plan.propagate_stores) {
          d << " (mitigated by store propagation)";
        }
      } else {
        f.severity = Severity::kInfo;
        d << "; unprotected data (expected for reductions/outputs)";
      }
      f.detail = d.str();
      out.push_back(std::move(f));
    }
  }
  return out;
}

std::vector<Finding> CertifyReadOnly(
    const trace::TraceStore& traces, const mem::AddressSpace& space,
    const sim::ProtectionPlan& plan) {
  std::vector<Finding> out;
  if (plan.scheme == sim::Scheme::kNone || plan.ranges.empty()) return out;
  struct Hit {
    std::uint64_t stores = 0;
    std::set<Pc> pcs;
    std::set<std::string> kernels;
    Addr first = ~Addr{0};
  };
  std::vector<Hit> hits(plan.ranges.size());
  for (std::uint32_t k = 0; k < traces.NumKernels(); ++k) {
    const trace::KernelView kt = traces.Kernel(k);
    // Kernels whose cached store-transaction total is zero cannot hit
    // any protected range; skip their walk entirely.
    if (kt.TotalStoreTransactions() == 0) continue;
    for (std::uint32_t w = 0; w < kt.NumWarps(); ++w) {
      const trace::WarpSlice wt = kt.Warp(w);
      for (std::uint32_t i = 0; i < wt.NumInsts(); ++i) {
        const trace::InstView inst = wt.Inst(i);
        if (inst.type != AccessType::kStore) continue;
        for (const Addr b : inst.blocks) {
          for (std::size_t r = 0; r < plan.ranges.size(); ++r) {
            if (!Overlaps(b, kBlockSize, plan.ranges[r].base,
                          plan.ranges[r].size)) {
              continue;
            }
            Hit& h = hits[r];
            ++h.stores;
            h.pcs.insert(inst.pc);
            h.kernels.insert(KernelLabel(kt));
            h.first = std::min(h.first, b);
          }
        }
      }
    }
  }
  for (std::size_t r = 0; r < plan.ranges.size(); ++r) {
    const Hit& h = hits[r];
    if (h.stores == 0) continue;
    Finding f;
    f.check = Check::kReadOnly;
    f.severity = Severity::kViolation;
    f.subject = NameAt(space, plan.ranges[r].base);
    f.addr = h.first;
    f.count = h.stores;
    std::ostringstream d;
    d << "protected object is stored to by ";
    for (auto it = h.kernels.begin(); it != h.kernels.end(); ++it) {
      if (it != h.kernels.begin()) d << ", ";
      d << *it;
    }
    d << " (" << h.stores << " store txns from " << h.pcs.size()
      << " site(s)); the paper's read-only soundness argument does "
         "not cover it";
    if (plan.propagate_stores) {
      d << " — store propagation keeps copies coherent (extension "
           "path), but certification still fails";
    } else {
      d << " — replicas desynchronize and lazy compare misfires";
    }
    f.detail = d.str();
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<Finding> CheckReplicaLayout(const mem::AddressSpace& space,
                                        const sim::ProtectionPlan& plan,
                                        std::optional<SpareRegion> spare) {
  std::vector<Finding> out;
  if (plan.scheme == sim::Scheme::kNone) return out;
  auto add = [&](Severity sev, const std::string& subject, Addr addr,
                 const std::string& detail) {
    out.push_back(
        {Check::kReplicaLayout, sev, subject, addr, 1, detail});
  };
  // Primary-range sanity first: overlapping primaries make Lookup
  // ambiguous; unnamed primaries have no object to certify.
  for (std::size_t i = 0; i < plan.ranges.size(); ++i) {
    const auto& ri = plan.ranges[i];
    if (!space.OwnerOf(ri.base)) {
      add(Severity::kWarning, NameAt(space, ri.base), ri.base,
          "protected range does not start inside any named data object");
    }
    for (std::size_t j = i + 1; j < plan.ranges.size(); ++j) {
      const auto& rj = plan.ranges[j];
      if (Overlaps(ri.base, ri.size, rj.base, rj.size)) {
        add(Severity::kViolation, NameAt(space, ri.base), ri.base,
            "protected ranges overlap: address lookup is ambiguous");
      }
    }
  }
  // Replica intervals vs. everything live.
  struct Interval {
    Addr base;
    std::uint64_t size;
    std::size_t range;
    unsigned copy;
  };
  std::vector<Interval> replicas;
  for (std::size_t r = 0; r < plan.ranges.size(); ++r) {
    for (unsigned c = 0; c < plan.CopiesFor(plan.ranges[r]); ++c) {
      replicas.push_back(
          {plan.ranges[r].ReplicaAddr(c, plan.ranges[r].base),
           plan.ranges[r].size, r, c});
    }
  }
  for (const Interval& rep : replicas) {
    const std::string primary = NameAt(space, plan.ranges[rep.range].base);
    if (rep.base + rep.size > space.StoreSize()) {
      add(Severity::kViolation, primary, rep.base,
          "replica range extends past the allocated backing store");
      continue;
    }
    for (const auto& obj : space.Objects()) {
      if (Overlaps(rep.base, rep.size, obj.base, obj.size_bytes)) {
        add(Severity::kViolation, primary, rep.base,
            "replica aliases live data object '" + obj.name +
                "': faults there corrupt both copies");
      }
    }
    for (std::size_t r = 0; r < plan.ranges.size(); ++r) {
      // Aliasing an unnamed primary is caught here; named primaries
      // are already covered by the object scan above.
      if (space.OwnerOf(plan.ranges[r].base)) continue;
      if (Overlaps(rep.base, rep.size, plan.ranges[r].base,
                   plan.ranges[r].size)) {
        add(Severity::kViolation, primary, rep.base,
            "replica aliases protected primary range of " +
                NameAt(space, plan.ranges[r].base));
      }
    }
    for (const Interval& other : replicas) {
      if (other.range == rep.range && other.copy == rep.copy) continue;
      // Report each aliasing pair once.
      if (other.base > rep.base ||
          (other.base == rep.base &&
           (other.range < rep.range ||
            (other.range == rep.range && other.copy < rep.copy)))) {
        continue;
      }
      if (Overlaps(rep.base, rep.size, other.base, other.size)) {
        add(Severity::kViolation, primary, rep.base,
            "replica aliases another replica (of " +
                NameAt(space, plan.ranges[other.range].base) +
                "): one fault can hit both copies");
      }
    }
    if (spare && Overlaps(rep.base, rep.size, spare->base, spare->size)) {
      add(Severity::kViolation, primary, rep.base,
          "replica aliases the Tier-1 retirement spare pool: a remap "
          "would silently overwrite replica data");
    }
  }
  return out;
}

std::vector<Finding> LintCapacity(
    const trace::TraceStore& traces, const mem::AddressSpace& space,
    const sim::ProtectionPlan& plan, const sim::GpuConfig& cfg) {
  std::vector<Finding> out;
  if (plan.scheme == sim::Scheme::kNone || plan.ranges.empty()) return out;

  // Replica start-address storage: 4 bytes per base address in the
  // paper's 128B table — 32 one-replica entries or 16 two-replica
  // entries (Section IV-C).
  std::uint64_t replica_addrs = 0;
  for (const auto& r : plan.ranges) replica_addrs += plan.CopiesFor(r);
  const std::uint64_t addr_capacity = cfg.replica_addr_table_bytes / 4;
  if (replica_addrs > addr_capacity) {
    Finding f;
    f.check = Check::kCapacity;
    f.severity = Severity::kViolation;
    f.subject = "replica-address-table";
    f.count = replica_addrs;
    std::ostringstream d;
    d << replica_addrs << " replica base addresses exceed the "
      << cfg.replica_addr_table_bytes << "B start-address table ("
      << addr_capacity << " entries)";
    f.detail = d.str();
    out.push_back(std::move(f));
  }

  // Protected-PC table: the plan's static load sites, or — in
  // address-check mode (empty table) — the trace-derived count that
  // PC tracking would need.
  std::uint64_t tracked = plan.pcs.size();
  bool derived = false;
  if (tracked == 0) {
    std::set<Pc> pcs;
    for (std::uint32_t k = 0; k < traces.NumKernels(); ++k) {
      const trace::KernelView kt = traces.Kernel(k);
      for (std::uint32_t w = 0; w < kt.NumWarps(); ++w) {
        const trace::WarpSlice wt = kt.Warp(w);
        for (std::uint32_t i = 0; i < wt.NumInsts(); ++i) {
          const trace::InstView inst = wt.Inst(i);
          if (inst.type != AccessType::kLoad) continue;
          for (const Addr b : inst.blocks) {
            if (plan.Lookup(b) != nullptr) {
              pcs.insert(inst.pc);
              break;
            }
          }
        }
      }
    }
    tracked = pcs.size();
    derived = true;
  }
  if (tracked > cfg.pc_table_entries) {
    Finding f;
    f.check = Check::kCapacity;
    f.severity = derived ? Severity::kWarning : Severity::kViolation;
    f.subject = "pc-table";
    f.count = tracked;
    std::ostringstream d;
    d << tracked << " distinct protected-load sites exceed the "
      << cfg.pc_table_entries << "-entry PC table";
    if (derived) {
      d << " (plan runs in address-check mode; enabling PC tracking "
           "would overflow)";
    }
    f.detail = d.str();
    out.push_back(std::move(f));
  }

  // Coalescing quality of the protected loads: replication multiplies
  // every transaction, so a fanned-out hot load inflates replica
  // traffic by the same factor.
  for (const auto& r : plan.ranges) {
    std::uint64_t insts = 0;
    std::uint64_t txns = 0;
    for (std::uint32_t k = 0; k < traces.NumKernels(); ++k) {
      const trace::KernelView kt = traces.Kernel(k);
      for (std::uint32_t w = 0; w < kt.NumWarps(); ++w) {
        const trace::WarpSlice wt = kt.Warp(w);
        for (std::uint32_t i = 0; i < wt.NumInsts(); ++i) {
          const trace::InstView inst = wt.Inst(i);
          if (inst.type != AccessType::kLoad) continue;
          std::uint64_t in_range = 0;
          for (const Addr b : inst.blocks) {
            if (Overlaps(b, kBlockSize, r.base, r.size)) ++in_range;
          }
          if (in_range > 0) {
            ++insts;
            txns += in_range;
          }
        }
      }
    }
    if (insts == 0) continue;
    const double avg = static_cast<double>(txns) /
                       static_cast<double>(insts);
    if (avg < kCoalesceInfoThreshold) continue;
    Finding f;
    f.check = Check::kCoalescing;
    f.severity = Severity::kInfo;
    f.subject = NameAt(space, r.base);
    f.addr = r.base;
    f.count = txns;
    std::ostringstream d;
    d << "protected loads average " << avg
      << " transactions per warp instruction (1.0 is fully coalesced); "
         "replication multiplies this fan-out";
    f.detail = d.str();
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<Finding> CrossCheckHotClaims(
    const trace::TraceStore& traces, const mem::AddressSpace& space,
    const core::HotClassification& hot) {
  std::vector<Finding> out;
  struct Claim {
    const mem::DataObject* obj;
    std::uint64_t stores = 0;
    Addr first = ~Addr{0};
  };
  std::vector<Claim> claims;
  claims.reserve(hot.coverage_order.size());
  for (const auto& op : hot.coverage_order) {
    claims.push_back({&space.Object(op.id), 0, ~Addr{0}});
  }
  if (claims.empty()) return out;
  for (std::uint32_t k = 0; k < traces.NumKernels(); ++k) {
    const trace::KernelView kt = traces.Kernel(k);
    if (kt.TotalStoreTransactions() == 0) continue;
    for (std::uint32_t w = 0; w < kt.NumWarps(); ++w) {
      const trace::WarpSlice wt = kt.Warp(w);
      for (std::uint32_t i = 0; i < wt.NumInsts(); ++i) {
        const trace::InstView inst = wt.Inst(i);
        if (inst.type != AccessType::kStore) continue;
        for (const Addr b : inst.blocks) {
          for (Claim& c : claims) {
            if (Overlaps(b, kBlockSize, c.obj->base, c.obj->size_bytes)) {
              ++c.stores;
              c.first = std::min(c.first, b);
            }
          }
        }
      }
    }
  }
  for (const Claim& c : claims) {
    if (c.stores == 0) continue;
    Finding f;
    f.check = Check::kHotClaim;
    f.severity = Severity::kViolation;
    f.subject = c.obj->name;
    f.addr = c.first;
    f.count = c.stores;
    std::ostringstream d;
    d << "hot classifier lists '" << c.obj->name
      << "' as a read-only coverage candidate, but the traces contain "
      << c.stores << " store transaction(s) into it";
    f.detail = d.str();
    out.push_back(std::move(f));
  }
  return out;
}

Report Analyze(const AnalyzerInput& in) {
  Report report;
  if (in.traces == nullptr || in.space == nullptr || in.plan == nullptr) {
    throw std::invalid_argument("analyzer input is incomplete");
  }
  report.Append(CheckInterWarpRaces(*in.traces, *in.space, *in.plan));
  report.Append(CertifyReadOnly(*in.traces, *in.space, *in.plan));
  report.Append(CheckReplicaLayout(*in.space, *in.plan, in.spare));
  report.Append(LintCapacity(*in.traces, *in.space, *in.plan, in.cfg));
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return report;
}

void WriteText(const Report& report, std::ostream& os) {
  os << "static analysis: " << report.Count(Severity::kViolation)
     << " violation(s), " << report.Count(Severity::kWarning)
     << " warning(s), " << report.Count(Severity::kInfo) << " info(s)";
  if (report.findings.empty()) {
    os << " — certified clean\n";
    return;
  }
  os << '\n';
  for (const auto& f : report.findings) {
    os << "  [" << SeverityName(f.severity) << "] " << CheckName(f.check)
       << " " << f.subject << " (addr=0x" << std::hex << f.addr << std::dec
       << ", count=" << f.count << "): " << f.detail << '\n';
  }
}

namespace {
std::string CsvQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void WriteCsv(const Report& report, std::ostream& os) {
  os << "check,severity,subject,addr,count,detail\n";
  for (const auto& f : report.findings) {
    os << CheckName(f.check) << ',' << SeverityName(f.severity) << ','
       << CsvQuote(f.subject) << ",0x" << std::hex << f.addr << std::dec
       << ',' << f.count << ',' << CsvQuote(f.detail) << '\n';
  }
}

std::vector<const Finding*> BlockingFindings(const Report& report,
                                             const sim::ProtectionPlan& plan) {
  std::vector<const Finding*> blocking;
  for (const auto& f : report.findings) {
    if (f.severity != Severity::kViolation) continue;
    const bool mitigated =
        plan.propagate_stores &&
        (f.check == Check::kReadOnly || f.check == Check::kInterWarpRace);
    if (!mitigated) blocking.push_back(&f);
  }
  return blocking;
}

}  // namespace dcrm::analysis
